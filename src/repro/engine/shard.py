"""Key-space sharding for range samplers: the §4.1 split, scaled out.

A range query over a sorted weighted point set decomposes by key-space
shard exactly the way the paper decomposes it over a canonical cover
(§4.1): the interval ``[x, y]`` meets each contiguous shard in a
(possibly empty) sub-span, one weighted draw lands in shard ``j`` with
probability ``W_j / W`` (``W_j`` = weight of shard ``j``'s sub-span,
``W`` = total), and conditioned on landing there it follows the shard's
own restricted distribution. Splitting the budget ``s`` multinomially
across shards and drawing each quota independently therefore reproduces
the unsharded output distribution *exactly* — the same
distribution-preserving composition argument the GUS sampling algebra
makes for partitioned samples, applied one level up. The merged result
is exchangeable with the serial stream (identical multiset
distribution), not byte-identical to it: the per-draw randomness is
spent in a different order.

:class:`ShardedSampler` is itself a
:class:`~repro.core.range_sampler.RangeSamplerBase`, so it inherits
``sample`` / ``sample_indices`` / ``sample_without_replacement`` and the
engine protocol for free; only ``sample_span`` is reimplemented as
*plan, fan out, merge*. The §4.1 arithmetic — the multinomial split on
``derive_seed(base, 0)``, the per-shard streams ``derive_seed(base,
1 + j)``, and the order-preserving merge — lives in
:mod:`repro.engine.placement` as pure functions of one stateless 64-bit
base drawn from the request's stream; this class only *executes* the
resulting :class:`~repro.engine.protocol.PlacementPlan`. Who executes
it is pluggable: by default the shard sub-draws fan out over this
wrapper's own thread pool (the legacy ``"shard"`` backend semantics),
but an engine can :meth:`bind_runner` any execution backend from
:mod:`repro.engine.execution` — inline, threads, or shard-resident
worker processes — and the merged output stays a pure function of
``(structure, request seed, K)`` because every task already carries its
derived seed.

This module is imported lazily (by the executor's sharded placement or
by user code), never from ``repro.engine``'s ``__init__`` — importing
:mod:`repro.engine` stays cheap and cycle-free.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.core.planner import QueryPlan, plan_scope
from repro.core.range_sampler import RangeSamplerBase
from repro.engine.placement import merge_indices, plan_fan_out
from repro.engine.protocol import PlacementPlan, ShardTask
from repro.errors import EmptyQueryError
from repro.substrates.rng import RNGLike, ensure_rng, spawn_rng

__all__ = ["ShardedSampler", "run_shard_task", "shard_bounds"]

_SHARDS = obs.counter(
    "engine.shards",
    "Shard sub-queries fanned out by sharded range execution",
)
_PLAN_BUILDS = obs.counter(
    "engine.plan_builds",
    "Sharded fan-out plans built (one cover computation per build)",
)
_PLAN_REUSE = obs.counter(
    "engine.plan_reuse",
    "Sharded fan-out plans served from the plan store (no cover work)",
)


def run_shard_task(
    shards: Sequence[Any], task: ShardTask, plan: Any = None
) -> Tuple[int, List[int]]:
    """Execute one :class:`~repro.engine.protocol.ShardTask` locally.

    The single point where a plan task turns into draws: shard
    ``task.shard`` samples its local span on the task's own stateless
    stream. Every execution backend — inline, thread pool, resident
    worker process — funnels through this function (or its worker-side
    twin), which is what makes the backends byte-identical.

    ``plan`` optionally carries the shard-local
    :class:`~repro.core.planner.QueryPlan` the parent already built —
    then execution goes straight to the shard's ``execute_plan`` and no
    cover is recomputed (byte-identical: ``sample_span`` *is*
    ``plan_span`` + ``execute_plan``, and planning consumes no
    randomness).
    """
    shard = shards[task.shard]
    rng = ensure_rng(task.seed)
    if plan is not None:
        return task.shard, shard.execute_plan(plan, task.quota, rng=rng)
    return task.shard, shard.sample_span(task.lo, task.hi, task.quota, rng=rng)


def shard_bounds(n: int, num_shards: int) -> List[int]:
    """Global sorted-index boundaries of ``num_shards`` contiguous shards.

    Returns ``num_shards + 1`` cut points; shard ``j`` owns the half-open
    index range ``[bounds[j], bounds[j + 1])``. Every shard is non-empty
    when ``num_shards <= n`` (callers clamp).
    """
    return [(j * n) // num_shards for j in range(num_shards + 1)]


class ShardedSampler(RangeSamplerBase):
    """K contiguous key-space shards behind one range-sampler facade.

    Construct through :meth:`from_sampler` (slice an existing structure)
    or :meth:`from_params` (build shards directly from ``keys`` and
    ``weights``). The wrapper keeps the full sorted key and weight
    arrays (for ``span_of`` and the inherited WoR paths) plus a
    prefix-sum array so each shard's weight inside a query span costs
    two array reads.
    """

    plan_kind = "sharded"

    def __init__(
        self,
        shards: Sequence[Any],
        keys: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        max_workers: Optional[int] = None,
        plan_cache_size: Optional[int] = None,
    ):
        super().__init__(keys, weights)
        if not shards:
            raise ValueError("ShardedSampler needs at least one shard")
        sizes = [len(shard) for shard in shards]
        if sum(sizes) != len(self.keys):
            raise ValueError(
                f"shard sizes {sizes} do not partition {len(self.keys)} keys"
            )
        self.shards: List[Any] = list(shards)
        bounds = [0]
        for size in sizes:
            bounds.append(bounds[-1] + size)
        self._bounds: List[int] = bounds
        if kernels.use_batch_build(len(self.weights)):
            np = kernels.np
            prefix_arr = np.empty(len(self.weights) + 1, dtype=np.float64)
            prefix_arr[0] = 0.0
            np.cumsum(np.asarray(self.weights, dtype=np.float64), out=prefix_arr[1:])
            prefix = prefix_arr.tolist()
        else:
            prefix = [0.0]
            acc = 0.0
            for weight in self.weights:
                acc += weight
                prefix.append(acc)
        self._prefix: List[float] = prefix
        self._rng = ensure_rng(rng)
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self._max_workers = max(1, min(len(self.shards), workers))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._runner: Optional[Any] = None
        self.plan_cache = plan_scope(self.plan_kind, plan_cache_size)

    # -- construction ------------------------------------------------------

    @staticmethod
    def supports(sampler: Any) -> bool:
        """Whether ``sampler`` can be sharded (sorted-key range structure)."""
        return isinstance(sampler, RangeSamplerBase)

    @classmethod
    def from_sampler(
        cls,
        sampler: Any,
        num_shards: int,
        rng: RNGLike = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedSampler":
        """Partition ``sampler``'s key space into ``num_shards`` shards.

        Each shard is a fresh instance of the *same* structure class over
        its contiguous key slice, so the per-shard query cost keeps the
        structure's own bounds on ``n/K`` keys. ``num_shards`` is clamped
        to the key count (every shard stays non-empty).
        """
        if isinstance(sampler, cls):
            return sampler
        if not cls.supports(sampler):
            raise TypeError(
                f"{type(sampler).__name__} does not support key-space "
                f"sharding; the shard backend needs a sorted-key range "
                f"structure (e.g. range.chunked, range.treewalk)"
            )
        if not isinstance(num_shards, int) or isinstance(num_shards, bool):
            raise TypeError(f"num_shards must be an int, got {num_shards!r}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        return cls.from_params(
            type(sampler),
            list(sampler.keys),
            list(sampler.weights),
            num_shards,
            rng=rng,
            max_workers=max_workers,
        )

    @classmethod
    def from_params(
        cls,
        shard_cls: type,
        keys: Sequence[float],
        weights: Optional[Sequence[float]],
        num_shards: int,
        rng: RNGLike = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedSampler":
        """Build ``num_shards`` instances of ``shard_cls`` over key slices."""
        n = len(keys)
        count = max(1, min(num_shards, n))
        bounds = shard_bounds(n, count)
        base_rng = ensure_rng(rng)
        weight_list = list(weights) if weights is not None else [1.0] * n
        shards = [
            shard_cls(
                list(keys[bounds[j]:bounds[j + 1]]),
                weights=weight_list[bounds[j]:bounds[j + 1]],
                rng=spawn_rng(base_rng, salt=j),
            )
            for j in range(count)
        ]
        return cls(
            shards, keys, weights=weight_list, rng=base_rng,
            max_workers=max_workers,
        )

    # -- introspection -----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self.shards]

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["shards"] = self.num_shards
        info["shard_type"] = type(self.shards[0]).__name__
        return info

    def space_words(self) -> int:
        # Wrapper arrays (keys + weights + prefix) on top of the shards.
        return 3 * len(self.keys) + sum(
            shard.space_words() for shard in self.shards
        )

    def bind_runner(self, runner: Optional[Any]) -> None:
        """Route plan execution through ``runner`` (an execution backend).

        ``None`` restores the default: fan out over this wrapper's own
        thread pool, the legacy ``"shard"`` backend semantics. The bound
        runner is owned by this view — :meth:`close` closes it.
        """
        previous, self._runner = self._runner, runner
        if previous is not None and previous is not runner:
            previous.close()

    def close(self) -> None:
        """Shut down the shard worker pool and bound runner (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        runner, self._runner = self._runner, None
        if runner is not None:
            runner.close()

    def __enter__(self) -> "ShardedSampler":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False

    # -- the sharded hot path ----------------------------------------------

    def _span_weight(self, lo: int, hi: int) -> float:
        weight = self._prefix[hi] - self._prefix[lo]
        if weight <= 0.0 and hi > lo:
            # Catastrophic float cancellation in the prefix sums —
            # recompute the rare offender exactly.
            weight = math.fsum(self.weights[lo:hi])
        return weight

    def _active_shards(self, lo: int, hi: int) -> List[Tuple[int, int, int, float]]:
        """``(shard, local_lo, local_hi, weight)`` for intersecting shards."""
        active = []
        bounds = self._bounds
        for j in range(len(self.shards)):
            a = max(lo, bounds[j])
            b = min(hi, bounds[j + 1])
            if a >= b:
                continue
            weight = self._span_weight(a, b)
            if weight <= 0.0:
                continue
            active.append((j, a - bounds[j], b - bounds[j], weight))
        return active

    def _shard_pool(self) -> Optional[ThreadPoolExecutor]:
        if self._max_workers < 2:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def sample_span(self, lo: int, hi: int, s: int, rng: RNGLike = None) -> List[int]:
        """Split ``s`` multinomially over shards, fan out, merge.

        The merge concatenates shard results in shard order — a
        deterministic order regardless of which worker finishes first.
        The multiset of returned indices follows exactly the unsharded
        weighted distribution over ``[lo, hi)``. With metrics enabled the
        whole fan-out is bracketed by an ``engine.shard_fanout`` span
        that carries the executing request's trace ID (the engine sets
        the current-trace context before dispatching to this sampler),
        so a per-request timeline shows how many shards a query touched
        and how long the split-draw-merge took.
        """
        if not obs.ENABLED:
            return self._fan_out(lo, hi, s, rng)
        with obs.span("engine.shard_fanout", s=s) as fanout_span:
            return self._fan_out(lo, hi, s, rng, fanout_span)

    def _build_plan(self, lo: int, hi: int, hint: Any = None) -> QueryPlan:
        """Plan once: active-shard table plus each shard's own sub-plan.

        The single cover computation of a sharded request. Each planful
        shard contributes its shard-local
        :class:`~repro.core.planner.QueryPlan` for its sub-span, built
        through the shard's *own* plan scope — so the plan store sees
        exactly one cover walk per distinct span, parent and shards
        alike. Unplanful shards (no ``plan_kind``) get ``None`` and fall
        back to ``sample_span`` at execution.
        """
        active = self._active_shards(lo, hi)
        sub_plans: List[Any] = []
        planful = False
        for j, a, b, _ in active:
            shard = self.shards[j]
            if getattr(shard, "plan_kind", None) is not None:
                sub_plans.append(shard.plan_span(a, b))
                planful = True
            else:
                sub_plans.append(None)
        return QueryPlan(
            self.plan_kind,
            (lo, hi),
            spans=tuple((a, b) for _, a, b, _ in active),
            weights=tuple(weight for _, _, _, weight in active),
            payload=(active, tuple(sub_plans) if planful else None),
        )

    def _fan_out(
        self, lo: int, hi: int, s: int, rng: RNGLike = None, span: Any = None
    ) -> List[int]:
        generator = ensure_rng(rng) if rng is not None else self._rng
        # One stateless base per request: the split and every shard
        # stream derive from it, so concurrency cannot reorder
        # randomness consumption. Drawn *before* planning (which
        # consumes no randomness) to match the pre-plan-layer stream
        # order bit-for-bit.
        base = generator.getrandbits(64)
        enabled = obs.ENABLED
        plan = self.plan_cache.get((lo, hi))
        if plan is None:
            if enabled:
                with obs.span("plan.build", kind=self.plan_kind, span=hi - lo):
                    plan = self._build_plan(lo, hi)
            else:
                plan = self._build_plan(lo, hi)
            self.plan_cache.put((lo, hi), plan)
            if enabled:
                _PLAN_BUILDS.inc()
        elif enabled:
            _PLAN_REUSE.inc()
        active, sub_plans = plan.payload
        if enabled:
            _SHARDS.add(len(active))
            if span is not None:
                span.set(shards=len(active))
        if not active:
            raise EmptyQueryError(
                f"no keys in index span [{lo}, {hi}) across "
                f"{self.num_shards} shards"
            )
        placement_plan = plan_fan_out(active, s, base, sub_plans=sub_plans)
        if self._runner is not None:
            partials = self._runner.run_plan(self, placement_plan)
        else:
            partials = self._run_plan_threaded(placement_plan)
        return merge_indices(partials, self._bounds)

    def _run_plan_threaded(self, plan: PlacementPlan) -> List[Tuple[int, List[int]]]:
        """Default execution: fan the plan out over this wrapper's pool."""
        tasks = plan.tasks
        plans = plan.plans or (None,) * len(tasks)
        pool = self._shard_pool() if len(tasks) > 1 else None
        if pool is not None:
            return list(
                pool.map(
                    lambda pair: run_shard_task(self.shards, pair[0], pair[1]),
                    zip(tasks, plans),
                )
            )
        return [
            run_shard_task(self.shards, task, sub)
            for task, sub in zip(tasks, plans)
        ]
