"""Composite builders behind multi-piece registry specs.

Each factory assembles an index substrate plus its Theorem-5 (or §6)
sampler from flat keyword parameters, so registry callers never juggle
two-step construction. Imported lazily by the registry — keep this
module free of import-time work.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.substrates.rng import RNGLike

__all__ = [
    "build_complement_approx",
    "build_complement_precomputed",
    "build_halfplane_coverage",
    "build_kdtree_coverage",
    "build_quadtree_coverage",
    "build_rangetree_coverage",
]


def build_kdtree_coverage(
    points: Sequence[Any],
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
    rng: RNGLike = None,
    **index_params: Any,
):
    """Theorem 5 over a kd-tree built from ``points``."""
    from repro.core.coverage import CoverageSampler
    from repro.substrates.kdtree import KDTree

    return CoverageSampler(
        KDTree(points, weights, **index_params), backend=backend, rng=rng
    )


def build_quadtree_coverage(
    points: Sequence[Any],
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
    rng: RNGLike = None,
    **index_params: Any,
):
    """Theorem 5 over a quadtree built from ``points``."""
    from repro.core.coverage import CoverageSampler
    from repro.substrates.quadtree import QuadTree

    return CoverageSampler(
        QuadTree(points, weights, **index_params), backend=backend, rng=rng
    )


def build_rangetree_coverage(
    points: Sequence[Any],
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
    rng: RNGLike = None,
    **index_params: Any,
):
    """Theorem 5 over a multi-dimensional range tree built from ``points``."""
    from repro.core.coverage import CoverageSampler
    from repro.substrates.rangetree import RangeTree

    return CoverageSampler(
        RangeTree(points, weights, **index_params), backend=backend, rng=rng
    )


def build_halfplane_coverage(
    points: Sequence[Any],
    weights: Optional[Sequence[float]] = None,
    backend: str = "auto",
    rng: RNGLike = None,
):
    """Theorem 5 over the convex-layers halfplane index (P11)."""
    from repro.core.coverage import CoverageSampler
    from repro.substrates.halfplane import HalfplaneIndex

    return CoverageSampler(HalfplaneIndex(points, weights), backend=backend, rng=rng)


def build_complement_approx(
    keys: Sequence[float] = (),
    weights: Optional[Sequence[float]] = None,
    rng: RNGLike = None,
    index: Any = None,
    **sampler_params: Any,
):
    """§6 range-complement sampling with on-the-fly approximate covers.

    Pass a prebuilt :class:`~repro.core.approx_coverage.ComplementRangeIndex`
    as ``index`` to share it between several samplers (as experiment E7
    does when comparing the on-the-fly and precomputed variants).
    """
    from repro.core.approx_coverage import ApproxCoverSampler, ComplementRangeIndex

    if index is None:
        index = ComplementRangeIndex(keys, weights)
    return ApproxCoverSampler(index, rng=rng, **sampler_params)


def build_complement_precomputed(
    keys: Sequence[float] = (),
    weights: Optional[Sequence[float]] = None,
    rng: RNGLike = None,
    index: Any = None,
    **sampler_params: Any,
):
    """§6 range-complement sampling with precomputed acceptance tables."""
    from repro.core.approx_coverage import ComplementRangeIndex, PrecomputedCoverSampler

    if index is None:
        index = ComplementRangeIndex(keys, weights)
    return PrecomputedCoverSampler(index, rng=rng, **sampler_params)
