"""Worker side of the engine's ``"process"`` backend.

Workers rebuild samplers from picklable *build tokens* once and keep
them resident in a module-level cache, so a batch of R requests costs R
executions plus at most one build per ``(worker, token)`` — not R
builds. This is what lets CPU-bound scalar samplers (whose hot loops the
GIL serializes under the thread backend) scale across cores: the
registry's specs are picklable, so ``(spec, params)`` crosses the
process boundary and the structure itself never does.

Token shapes (first element is the kind):

* ``("spec", spec, params_items)`` — ``build(spec, **dict(params_items))``
  through the sampler registry; ``params_items`` is a sorted tuple of
  ``(name, value)`` pairs so equal parameter dicts produce equal tokens.
* ``("demo", spec, n)`` — ``demo_build(spec, n=n)``, the synthesized CLI
  workload.
* ``("call", "module:attr", params_items)`` — an arbitrary importable
  factory (test fault injection, custom builders).
* ``("shm", manifest)`` — attach a structure the parent exported into
  shared memory (:mod:`repro.engine.shm`, via
  :meth:`SamplingEngine.share`). The "rebuild" is an mmap attach: no
  structure arrays cross the process boundary and no O(n) build runs.

Every execution error is captured *in the worker* into the result
envelope, so one bad request cannot poison the pool; only a worker that
dies outright (``os._exit``, OOM-kill) surfaces as a broken-pool error,
which the parent converts into per-request
:class:`~repro.errors.WorkerCrashedError` envelopes.

**Metric harvest** (``harvest=True``, set by the parent iff its metrics
are enabled): the worker enables its own registry, brackets the chunk
with a :func:`repro.obs.harvest.baseline` / ``delta_since`` pair, tags
every execution with the request's trace ID (a ``worker.execute`` span
plus a flight-recorder entry carrying this PID), and returns the delta
as the third envelope element. The parent merges it once per resolved
future — a crashed worker returns no envelope, so its partial counts die
with it and a retried request is never double-counted.
"""

from __future__ import annotations

import importlib
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.engine.protocol import QueryRequest, QueryResult
from repro.substrates.rng import ensure_rng

__all__ = ["build_from_token", "execute_chunk"]

#: Per-worker-process resident samplers, keyed by the pickled token.
_RESIDENT: Dict[bytes, Any] = {}


def build_from_token(token: Tuple[Any, ...]) -> Any:
    """Construct the sampler a build token describes (registry-shaped)."""
    kind = token[0]
    if kind == "spec":
        from repro.engine.registry import build

        _, spec, params_items = token
        return build(spec, **dict(params_items))
    if kind == "demo":
        from repro.engine.demo import demo_build

        _, spec, n = token
        sampler, _ = demo_build(spec, n=n)
        return sampler
    if kind == "call":
        _, target, params_items = token
        module_name, _, attr = target.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        return factory(**dict(params_items))
    if kind == "shm":
        from repro.engine import shm

        _, manifest = token
        return shm.attach_sampler(manifest)
    raise ValueError(f"unknown build token kind {kind!r}")


def _picklable_error(exc: Exception) -> Exception:
    """The exception itself if it round-trips through pickle, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def execute_chunk(
    key: bytes,
    token: Tuple[Any, ...],
    jobs: List[Tuple[QueryRequest, Optional[int]]],
    harvest: bool = False,
) -> Tuple[int, List[QueryResult], Optional[dict]]:
    """Execute a chunk of ``(request, seed)`` jobs on the resident sampler.

    Returns ``(rebuilds, results, delta)`` where ``rebuilds`` is 1 when
    this call had to (re)build the sampler — the parent feeds it into the
    ``engine.worker_rebuilds`` counter — and ``delta`` is the harvest
    payload of everything this chunk recorded in the worker registry
    (``None`` unless ``harvest``). Results are order-preserving and every
    failure is captured into the per-request envelope.
    """
    base: Optional[dict] = None
    if harvest:
        from repro.obs import harvest as harvest_mod

        # The parent may have enabled metrics after this worker forked
        # (or the pool spawned without REPRO_METRICS): the per-chunk flag
        # is authoritative. Enabling is sticky — residency makes this
        # worker serve many chunks, and re-disabling between chunks
        # would only race the next flag.
        obs.enable()
        base = harvest_mod.baseline()
    rebuilds = 0
    sampler = _RESIDENT.get(key)
    results: List[QueryResult] = []
    for request, seed in jobs:
        trace_token = (
            obs.set_current_trace(request.trace_id) if harvest else None
        )
        try:
            if sampler is None:
                with obs.span("worker.build", kind=str(token[0])):
                    sampler = build_from_token(token)
                _RESIDENT[key] = sampler
                rebuilds = 1
            with obs.span("worker.execute", op=request.op):
                result = sampler.execute(
                    request, rng=None if seed is None else ensure_rng(seed)
                )
            result.seed = seed
        except Exception as exc:
            result = QueryResult(
                request=request,
                values=None,
                seed=seed,
                trace_id=request.trace_id,
                error=_picklable_error(exc),
            )
        finally:
            if trace_token is not None:
                obs.reset_current_trace(trace_token)
        if harvest:
            obs.RECORDER.record(
                trace=request.trace_id,
                spec=_spec_label(token),
                op=request.op,
                s=request.s,
                backend="process",
                duration_us=(result.elapsed_s or 0.0) * 1e6,
                error=(
                    type(result.error).__name__
                    if result.error is not None
                    else None
                ),
            )
        results.append(result)
    if harvest:
        return rebuilds, results, harvest_mod.delta_since(base)
    return rebuilds, results, None


def _spec_label(token: Tuple[Any, ...]) -> str:
    """A short human label for the structure a build token describes."""
    kind = token[0]
    if kind in ("spec", "demo", "call") and len(token) > 1:
        return str(token[1])
    if kind == "shm" and len(token) > 1:
        return f"shm:{token[1].get('kind', '?')}"
    return str(kind)
