"""Worker side of the engine's ``"process"`` backend.

Workers rebuild samplers from picklable *build tokens* once and keep
them resident in a module-level cache, so a batch of R requests costs R
executions plus at most one build per ``(worker, token)`` — not R
builds. This is what lets CPU-bound scalar samplers (whose hot loops the
GIL serializes under the thread backend) scale across cores: the
registry's specs are picklable, so ``(spec, params)`` crosses the
process boundary and the structure itself never does.

Token shapes (first element is the kind):

* ``("spec", spec, params_items)`` — ``build(spec, **dict(params_items))``
  through the sampler registry; ``params_items`` is a sorted tuple of
  ``(name, value)`` pairs so equal parameter dicts produce equal tokens.
* ``("demo", spec, n)`` — ``demo_build(spec, n=n)``, the synthesized CLI
  workload.
* ``("call", "module:attr", params_items)`` — an arbitrary importable
  factory (test fault injection, custom builders).
* ``("shm", manifest)`` — attach a structure the parent exported into
  shared memory (:mod:`repro.engine.shm`, via
  :meth:`SamplingEngine.share`). The "rebuild" is an mmap attach: no
  structure arrays cross the process boundary and no O(n) build runs.
* ``("shard", "module:Class", keys, weights)`` — rebuild one key-space
  shard of a sharded placement from its raw arrays. The fallback path
  for shard-resident workers when the shard's structure has no shm
  exporter; the preferred path ships the shard as an ``("shm", ...)``
  token instead.

Shard-resident execution (:func:`execute_shard_chunk`) is the composed
``sharded × process`` backend's worker half: one shard lives in exactly
one resident worker, and each call executes that shard's slice of
placement plans — ``(lo, hi, quota, seed)`` sub-draws, a few ints each —
so per-request bytes stay O(log n) end to end.

Every execution error is captured *in the worker* into the result
envelope, so one bad request cannot poison the pool; only a worker that
dies outright (``os._exit``, OOM-kill) surfaces as a broken-pool error,
which the parent converts into per-request
:class:`~repro.errors.WorkerCrashedError` envelopes.

**Metric harvest** (``harvest=True``, set by the parent iff its metrics
are enabled): the worker enables its own registry, brackets the chunk
with a :func:`repro.obs.harvest.baseline` / ``delta_since`` pair, tags
every execution with the request's trace ID (a ``worker.execute`` span
plus a flight-recorder entry carrying this PID), and returns the delta
as the third envelope element. The parent merges it once per resolved
future — a crashed worker returns no envelope, so its partial counts die
with it and a retried request is never double-counted.
"""

from __future__ import annotations

import importlib
import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.engine.protocol import QueryRequest, QueryResult
from repro.substrates.rng import ensure_rng

__all__ = ["build_from_token", "execute_chunk", "execute_shard_chunk"]

#: Per-worker-process resident samplers, keyed by the pickled token.
_RESIDENT: Dict[bytes, Any] = {}


def build_from_token(token: Tuple[Any, ...]) -> Any:
    """Construct the sampler a build token describes (registry-shaped)."""
    kind = token[0]
    if kind == "spec":
        from repro.engine.registry import build

        _, spec, params_items = token
        return build(spec, **dict(params_items))
    if kind == "demo":
        from repro.engine.demo import demo_build

        _, spec, n = token
        sampler, _ = demo_build(spec, n=n)
        return sampler
    if kind == "call":
        _, target, params_items = token
        module_name, _, attr = target.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        return factory(**dict(params_items))
    if kind == "shm":
        from repro.engine import shm

        _, manifest = token
        return shm.attach_sampler(manifest)
    if kind == "shard":
        _, target, keys, weights = token
        module_name, _, attr = target.partition(":")
        shard_cls = getattr(importlib.import_module(module_name), attr)
        # Construction consumes no instance randomness (builds are
        # deterministic) and every shard draw arrives with an explicit
        # per-task rng, so a fixed rebuild seed keeps the resident shard
        # byte-identical to the parent's copy.
        return shard_cls(list(keys), weights=list(weights), rng=0)
    raise ValueError(f"unknown build token kind {kind!r}")


def _picklable_error(exc: Exception) -> Exception:
    """The exception itself if it round-trips through pickle, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def execute_chunk(
    key: bytes,
    token: Tuple[Any, ...],
    jobs: List[Tuple[QueryRequest, Optional[int]]],
    harvest: bool = False,
) -> Tuple[int, List[QueryResult], Optional[dict]]:
    """Execute a chunk of ``(request, seed)`` jobs on the resident sampler.

    Returns ``(rebuilds, results, delta)`` where ``rebuilds`` is 1 when
    this call had to (re)build the sampler — the parent feeds it into the
    ``engine.worker_rebuilds`` counter — and ``delta`` is the harvest
    payload of everything this chunk recorded in the worker registry
    (``None`` unless ``harvest``). Results are order-preserving and every
    failure is captured into the per-request envelope.
    """
    base: Optional[dict] = None
    if harvest:
        from repro.obs import harvest as harvest_mod

        # The parent may have enabled metrics after this worker forked
        # (or the pool spawned without REPRO_METRICS): the per-chunk flag
        # is authoritative. Enabling is sticky — residency makes this
        # worker serve many chunks, and re-disabling between chunks
        # would only race the next flag.
        obs.enable()
        base = harvest_mod.baseline()
    rebuilds = 0
    sampler = _RESIDENT.get(key)
    results: List[QueryResult] = []
    for request, seed in jobs:
        trace_token = (
            obs.set_current_trace(request.trace_id) if harvest else None
        )
        try:
            if sampler is None:
                with obs.span("worker.build", kind=str(token[0])):
                    sampler = build_from_token(token)
                _RESIDENT[key] = sampler
                rebuilds = 1
            with obs.span("worker.execute", op=request.op):
                result = sampler.execute(
                    request, rng=None if seed is None else ensure_rng(seed)
                )
            result.seed = seed
        except Exception as exc:
            result = QueryResult(
                request=request,
                values=None,
                seed=seed,
                trace_id=request.trace_id,
                error=_picklable_error(exc),
            )
        finally:
            if trace_token is not None:
                obs.reset_current_trace(trace_token)
        if harvest:
            obs.RECORDER.record(
                trace=request.trace_id,
                spec=_spec_label(token),
                op=request.op,
                s=request.s,
                backend="process",
                duration_us=(result.elapsed_s or 0.0) * 1e6,
                error=(
                    type(result.error).__name__
                    if result.error is not None
                    else None
                ),
            )
        results.append(result)
    if harvest:
        return rebuilds, results, harvest_mod.delta_since(base)
    return rebuilds, results, None


def execute_shard_chunk(
    key: bytes,
    token: Tuple[Any, ...],
    draws: List[Tuple[Any, ...]],
    harvest: bool = False,
) -> Tuple[int, List[Tuple[str, Any]], Optional[dict]]:
    """Execute shard sub-draws on this worker's resident shard.

    ``draws`` entries are ``(shard, lo, hi, quota, seed, trace_id)`` —
    one :class:`~repro.engine.protocol.ShardTask` each, plus the owning
    request's trace for harvest tagging — optionally extended with a
    seventh *portable plan* element, ``(kind, key, hint)`` from
    :meth:`~repro.core.planner.QueryPlan.portable`. When present (and
    the resident shard is planful), the worker rebuilds the parent's
    shard-local plan from the cover hint — skipping the cover search —
    and executes it; planning consumes no randomness, so the draws stay
    byte-identical to the ``sample_span`` path. All entries must target
    the shard this worker's ``token`` rebuilds (the parent routes one
    shard per resident worker). Returns ``(rebuilds, outcomes, delta)``
    where each outcome is ``("ok", local_indices)`` or
    ``("err", exception)`` — failures are captured per sub-draw so one
    bad span cannot poison the shard's batchmates. With ``harvest`` on,
    each sub-draw lands in the flight recorder tagged with its shard id
    (``spec`` suffix ``#s<j>``), so per-shard timelines fall out of the
    normal obs tail.
    """
    base: Optional[dict] = None
    if harvest:
        from repro.obs import harvest as harvest_mod

        obs.enable()
        base = harvest_mod.baseline()
    rebuilds = 0
    sampler = _RESIDENT.get(key)
    outcomes: List[Tuple[str, Any]] = []
    for entry in draws:
        shard, lo, hi, quota, seed, trace_id = entry[:6]
        portable = entry[6] if len(entry) > 6 else None
        trace_token = obs.set_current_trace(trace_id) if harvest else None
        started = time.perf_counter()
        error: Optional[Exception] = None
        try:
            if sampler is None:
                with obs.span("worker.build", kind=str(token[0])):
                    sampler = build_from_token(token)
                _RESIDENT[key] = sampler
                rebuilds = 1
            with obs.span("worker.shard_draw", s=quota, shard=shard):
                if portable is not None and getattr(sampler, "plan_kind", None):
                    plan = sampler.plan_span(lo, hi, portable=portable)
                    local = sampler.execute_plan(
                        plan, quota, rng=ensure_rng(seed)
                    )
                else:
                    local = sampler.sample_span(
                        lo, hi, quota, rng=ensure_rng(seed)
                    )
            outcomes.append(("ok", local))
        except Exception as exc:
            error = _picklable_error(exc)
            outcomes.append(("err", error))
        finally:
            if trace_token is not None:
                obs.reset_current_trace(trace_token)
        if harvest:
            obs.RECORDER.record(
                trace=trace_id,
                spec=f"{_spec_label(token)}#s{shard}",
                op="sample_span",
                s=quota,
                backend="process",
                duration_us=(time.perf_counter() - started) * 1e6,
                error=type(error).__name__ if error is not None else None,
            )
    if harvest:
        return rebuilds, outcomes, harvest_mod.delta_since(base)
    return rebuilds, outcomes, None


def _spec_label(token: Tuple[Any, ...]) -> str:
    """A short human label for the structure a build token describes."""
    kind = token[0]
    if kind in ("spec", "demo", "call") and len(token) > 1:
        return str(token[1])
    if kind == "shm" and len(token) > 1:
        return f"shm:{token[1].get('kind', '?')}"
    if kind == "shard" and len(token) > 1:
        return f"shard:{str(token[1]).rpartition(':')[2]}"
    return str(kind)
