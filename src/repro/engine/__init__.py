"""Unified sampler engine: protocol, registry/factory, batched executor.

Every sampler family in this package — alias (P1), tree (P2), the §3.2/§4
range structures (P3), Theorem-5 coverage sampling (P4/P5), set-union
(P6), fair near-neighbor (P7), the dynamic and external-memory
extensions — historically exposed its own constructor signature and
``sample(...)`` entry point. This subpackage is the single seam on top of
them all:

* :class:`~repro.engine.protocol.Sampler` — the structural protocol
  (``build`` / ``sample`` / ``sample_many`` / ``describe``) plus the
  uniform request entry point ``execute(request)`` that every structure
  implements through :class:`~repro.engine.protocol.EngineSampler`.
* :class:`~repro.engine.protocol.QueryRequest` /
  :class:`~repro.engine.protocol.QueryResult` — typed request/response
  dataclasses with shared validation (the one place ``s`` and interval
  sanity are checked).
* :class:`~repro.engine.registry.SamplerRegistry` — string-keyed specs
  (``"range.chunked"``, ``"fair_nn"``, ...) with lazy imports;
  :func:`~repro.engine.registry.build` is the factory every experiment,
  benchmark, and CLI entry point constructs samplers through.
* :class:`~repro.engine.executor.SamplingEngine` — batched executor with
  per-request independent RNG streams (seed-spawning via
  :func:`repro.substrates.rng.derive_seed`) and two composable layers:
  a placement (:mod:`repro.engine.placement` — ``local`` or the §4.1
  ``sharded`` key-space split) over an execution backend (serial /
  thread / process, :mod:`repro.engine.execution`). The local process
  backend ships picklable ``(spec, params)`` build tokens to resident
  pool workers (:mod:`repro.engine.worker`); the sharded placement
  partitions a range structure's key space and splits each request's
  budget multinomially (:class:`~repro.engine.shard.ShardedSampler`,
  re-exported lazily here), and composed with the process backend keeps
  one shard resident per worker. Legacy backend strings stay valid:
  ``"shard"`` aliases ``placement="sharded", backend="thread"``.

Quickstart::

    from repro.engine import QueryRequest, SamplingEngine, build

    sampler = build("range.chunked", keys=keys, weights=weights, rng=7)
    engine = SamplingEngine(backend="thread", seed=42)
    results = engine.run(
        sampler,
        [QueryRequest(op="sample", args=(x, y), s=64) for x, y in spans],
    )

See docs/ARCHITECTURE.md for the layer diagram and the registry key
table.
"""

from repro.engine.demo import demo_build
from repro.engine.executor import BACKENDS, PLACEMENTS, SamplingEngine, spec_token
from repro.engine.placement import normalize_backend
from repro.engine.protocol import (
    EngineOp,
    EngineSampler,
    PlacementPlan,
    QueryRequest,
    QueryResult,
    Sampler,
    ShardTask,
)
from repro.engine.registry import REGISTRY, SamplerEntry, SamplerRegistry, build

__all__ = [
    "BACKENDS",
    "EngineOp",
    "EngineSampler",
    "PLACEMENTS",
    "PlacementPlan",
    "QueryRequest",
    "QueryResult",
    "REGISTRY",
    "Sampler",
    "SamplerEntry",
    "SamplerRegistry",
    "SamplingEngine",
    "ShardTask",
    "ShardedSampler",
    "ShmShareError",
    "build",
    "demo_build",
    "normalize_backend",
    "spec_token",
]


def __getattr__(name):
    # ShardedSampler pulls in the core range-sampler stack, and the shm
    # module needs numpy, so both are resolved lazily — ``import
    # repro.engine`` stays cheap (the same policy as the registry's
    # dotted-path targets).
    if name == "ShardedSampler":
        from repro.engine.shard import ShardedSampler

        return ShardedSampler
    if name == "ShmShareError":
        from repro.engine.shm import ShmShareError

        return ShmShareError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
