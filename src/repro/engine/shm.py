"""Zero-copy structure sharing for the process backend.

The ``"process"`` backend ships *build tokens* to its workers, and each
worker rebuilds the sampler once (``engine.worker_rebuilds``). For a big
structure that residency cost is a full O(n log n) construction **per
worker** — the arrays already sitting in the parent are rebuilt K times.

This module exports a built structure's flat arrays — alias prob/alias
tables, BST node arrays, prefix data — into named
:class:`multiprocessing.shared_memory.SharedMemory` blocks, and rebuilds
an equivalent sampler *around* those blocks on the worker side. The
``("shm", manifest)`` token (see :mod:`repro.engine.worker`) carries only
segment names, dtypes, shapes, and O(log n) metadata — a few hundred
bytes regardless of ``n`` — so "rebuilding" in a worker becomes an mmap
attach: no structure arrays are ever pickled, and no O(n) work runs in
the worker (asserted via the ``engine.serialized_bytes`` counter and the
``engine.shm_attach_us`` histogram in ``tests/engine/test_shm.py``).

Lifecycle
---------
Segments are created by :meth:`SamplingEngine.share` and **owned by the
parent**: ``SamplingEngine.close()`` unlinks them. Workers attach
read-only and keep their handles in a process-lifetime registry
(:data:`_ATTACHED`) — they never close or unlink, so a worker crash
cannot leak a segment (POSIX shm lives until *unlink* + last unmap; the
parent always unlinks, and dead workers' mappings vanish with them).
Attaching is done untracked (``track=False`` on Python 3.13+, the
``resource_tracker.unregister`` recipe below it) so a worker exiting
cannot prematurely unlink segments other workers still use.

Name-based attach is start-method agnostic: the same token works under
``fork`` and ``spawn`` (asserted in the spawn test).

Supported structures: :class:`~repro.core.alias.AliasSampler`,
:class:`~repro.core.range_sampler.TreeWalkRangeSampler`,
:class:`~repro.core.range_sampler.AliasAugmentedRangeSampler` (the
Lemma-2 structure; scalar builds synthesize the flat-table form on
export), :class:`~repro.core.range_sampler.ChunkedRangeSampler`
(Theorem 3 — chunk matrices, Fenwick array, and the nested ``T_chunk``
ride along under a ``tchunk.`` prefix), and
:class:`~repro.core.coverage.CoverageSampler` over a ``BSTIndex``
(uniform/chunked backends; the nested chunked structure nests under a
``cov.`` prefix). Sharing anything else raises :class:`ShmShareError`
with a pointer back to the spec-token path.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory
from time import perf_counter
from typing import Any, Dict, List, Tuple

import numpy as np

from repro import obs
from repro.substrates.rng import DEFAULT_SEED, ensure_rng

__all__ = [
    "ShmShareError",
    "export_sampler",
    "attach_sampler",
    "shm_token",
    "manifest_nbytes",
    "unlink_segments",
]

_ATTACH_US = obs.histogram(
    "engine.shm_attach_us",
    "Microseconds to attach a shared-memory structure in a worker",
)

#: Process-lifetime keepalive: segment name -> open handle. A worker that
#: attached a structure must keep the mapping alive as long as the
#: resident sampler lives (forever, for a pool worker); re-attaching the
#: same segment reuses the handle.
_ATTACHED: Dict[str, SharedMemory] = {}


class ShmShareError(TypeError):
    """The sampler's structure cannot be exported to shared memory."""


def shm_token(manifest: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """The process-backend build token for an exported structure."""
    return ("shm", manifest)


def manifest_nbytes(manifest: Dict[str, Any]) -> int:
    """Total bytes of shared array payload the manifest references."""
    total = 0
    for _, dtype, shape in manifest["arrays"].values():
        n = 1
        for dim in shape:
            n *= dim
        total += n * np.dtype(dtype).itemsize
    return total


# ----------------------------------------------------------------------
# segment plumbing
# ----------------------------------------------------------------------


def _untracked_attach(name: str) -> SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    CPython's resource tracker registers *attaches* too (bpo-39959), so a
    worker exiting would unlink segments the parent and its siblings
    still use. Python 3.13 grew ``track=False``; older versions need the
    standard unregister recipe.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - depends on interpreter version
        pass
    shm = SharedMemory(name=name)
    try:  # pragma: no cover - CPython implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def unlink_segments(segments: List[SharedMemory]) -> None:
    """Close and unlink segments, tolerating already-gone names.

    Under the ``fork`` start method workers share the parent's resource
    tracker, so a worker's attach-side ``unregister`` (see
    :func:`_untracked_attach`) may have dropped the name the parent's
    ``unlink()`` is about to unregister — re-registering first keeps the
    tracker's books balanced instead of spraying ``KeyError`` tracebacks
    from its daemon.
    """
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - buffer already released
            pass
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker gone at shutdown
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _export_arrays(
    arrays: Dict[str, Any],
) -> Tuple[Dict[str, Tuple[str, str, Tuple[int, ...]]], List[SharedMemory]]:
    """Copy each array into its own named segment; return (entries, segments)."""
    entries: Dict[str, Tuple[str, str, Tuple[int, ...]]] = {}
    segments: List[SharedMemory] = []
    try:
        for name, array in arrays.items():
            arr = np.ascontiguousarray(array)
            seg = SharedMemory(create=True, size=max(1, arr.nbytes))
            segments.append(seg)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
            entries[name] = (seg.name, arr.dtype.str, tuple(arr.shape))
    except Exception:
        unlink_segments(segments)
        raise
    return entries, segments


def _attach_array(entry: Tuple[str, str, Tuple[int, ...]]) -> Any:
    """Read-only array view over a (possibly already attached) segment."""
    name, dtype, shape = entry
    seg = _ATTACHED.get(name)
    if seg is None:
        seg = _untracked_attach(name)
        _ATTACHED[name] = seg
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf)
    view.setflags(write=False)
    return view


class _SharedSeq:
    """Zero-copy list facade over a shared numeric array.

    ``AliasSampler._items`` and ``RangeSamplerBase.keys`` are
    contractually Python lists whose elements flow straight into query
    results, so an attached sampler must not hand numpy scalars back to
    callers (``json`` can't serialize them, and types would differ from
    a rebuilt sampler's). Elements convert on access instead of copying
    the array into every worker.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr: Any) -> None:
        self._arr = arr

    def __len__(self) -> int:
        return len(self._arr)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return self._arr[index].tolist()
        return self._arr[index].item()

    def __iter__(self) -> Any:
        return iter(self._arr.tolist())


def _numeric_array(values: Any, context: str) -> Any:
    """Coerce to a shareable numeric array, keeping the native dtype.

    Int items must round-trip as ints (``_SharedSeq`` converts back with
    ``.item()``), so the dtype is inferred rather than forced to float64.
    """
    try:
        arr = np.asarray(values)
    except (TypeError, ValueError):
        arr = None
    if arr is None or arr.dtype.kind not in "iuf":
        raise ShmShareError(
            f"{context} must be numeric to share via shared memory; "
            "use a spec token for object-keyed structures"
        )
    return arr


# ----------------------------------------------------------------------
# per-structure exporters / attachers
# ----------------------------------------------------------------------


def _export_alias(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    if sampler._np_tables is not None:
        prob, alias = sampler._np_tables
    else:
        prob = np.asarray(sampler._prob, dtype=np.float64)
        alias = np.asarray(sampler._alias, dtype=np.intp)
    arrays = {
        "items": _numeric_array(sampler._items, "AliasSampler items"),
        "weights": np.asarray(sampler._weights, dtype=np.float64),
        "prob": prob,
        "alias": np.asarray(alias, dtype=np.intp),
    }
    meta = {"total_weight": sampler._total_weight}
    return arrays, meta


def _attach_alias(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.alias import AliasSampler

    sampler = object.__new__(AliasSampler)
    items = _SharedSeq(arrays["items"])
    sampler._items = items
    sampler._items_view = items
    sampler._weights = arrays["weights"]
    sampler._prob = arrays["prob"]
    sampler._alias = arrays["alias"]
    sampler._np_tables = (arrays["prob"], arrays["alias"])
    sampler._total_weight = meta["total_weight"]
    sampler._rng = ensure_rng(meta["rng_seed"])
    return sampler


_TREE_ARRAYS = ("left", "right", "lo", "hi", "node_weight", "node_key", "leaf_node_of")


def _export_tree(tree: Any) -> Dict[str, Any]:
    """The StaticBST node arrays, keyed with a ``tree.`` prefix."""
    return {
        "tree.left": np.asarray(tree._left, dtype=np.intp),
        "tree.right": np.asarray(tree._right, dtype=np.intp),
        "tree.lo": np.asarray(tree._lo, dtype=np.intp),
        "tree.hi": np.asarray(tree._hi, dtype=np.intp),
        "tree.node_weight": np.asarray(tree._node_weight, dtype=np.float64),
        "tree.node_key": _numeric_array(tree._node_key, "StaticBST node keys"),
        "tree.leaf_node_of": np.asarray(tree._leaf_node_of, dtype=np.intp),
    }


def _attach_tree(arrays: Dict[str, Any], meta: Dict[str, Any], keys: Any, weights: Any) -> Any:
    from repro.substrates.bst import StaticBST

    tree = object.__new__(StaticBST)
    tree.keys = keys
    tree.weights = weights
    tree._left = arrays["tree.left"]
    tree._right = arrays["tree.right"]
    tree._lo = arrays["tree.lo"]
    tree._hi = arrays["tree.hi"]
    tree._node_weight = arrays["tree.node_weight"]
    tree._node_key = arrays["tree.node_key"]
    tree._leaf_node_of = arrays["tree.leaf_node_of"]
    tree._level_bounds = [tuple(b) for b in meta["level_bounds"]]
    tree._np_arrays = {
        "lo": arrays["tree.lo"],
        "hi": arrays["tree.hi"],
        "left": arrays["tree.left"],
        "right": arrays["tree.right"],
        "node_weight": arrays["tree.node_weight"],
        "leaf_weight": weights,
    }
    tree.root = 0
    return tree


def _export_range_common(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    arrays = {
        "keys": _numeric_array(sampler.keys, f"{type(sampler).__name__} keys"),
        "weights": np.asarray(sampler.weights, dtype=np.float64),
    }
    arrays.update(_export_tree(sampler._tree))
    meta = {
        "all_weights_equal": sampler._all_weights_equal,
        "level_bounds": [tuple(b) for b in sampler._tree.level_bounds()],
        "plan_cache_size": sampler.plan_cache.capacity,
    }
    return arrays, meta


def _attach_range_common(sampler: Any, arrays: Dict[str, Any], meta: Dict[str, Any]) -> None:
    from repro.core.planner import plan_scope

    sampler.keys = _SharedSeq(arrays["keys"])
    sampler.weights = arrays["weights"]
    sampler._all_weights_equal = meta["all_weights_equal"]
    sampler._tree = _attach_tree(arrays, meta, arrays["keys"], arrays["weights"])
    sampler._rng = ensure_rng(meta["rng_seed"])
    sampler.plan_cache = plan_scope(sampler.plan_kind, meta["plan_cache_size"])


def _export_treewalk(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    return _export_range_common(sampler)


def _attach_treewalk(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.range_sampler import TreeWalkRangeSampler

    sampler = object.__new__(TreeWalkRangeSampler)
    _attach_range_common(sampler, arrays, meta)
    sampler._np_tree = (
        arrays["tree.left"],
        arrays["tree.right"],
        arrays["tree.node_weight"],
        arrays["tree.lo"],
    )
    return sampler


def _lemma2_flat_from_scalar(sampler: Any) -> tuple:
    """Synthesize the packed flat-table form from scalar per-node tables.

    A scalar-built Lemma-2 structure holds every internal node's
    ``(prob, alias)`` eagerly; concatenating them in ascending node-id
    order produces exactly the arrays the packed builder would have
    stored (same float64/intp payload), so an attached copy draws
    byte-identically whichever path built the original.
    """
    internal = [
        node for node, tables in enumerate(sampler._node_tables) if tables is not None
    ]
    sizes = np.asarray(
        [len(sampler._node_tables[node][0]) for node in internal], dtype=np.intp
    )
    out_starts = np.cumsum(sizes) - sizes if internal else sizes
    if internal:
        prob_flat = np.concatenate(
            [np.asarray(sampler._node_tables[n][0], dtype=np.float64) for n in internal]
        )
        alias_flat = np.concatenate(
            [np.asarray(sampler._node_tables[n][1], dtype=np.intp) for n in internal]
        )
    else:
        prob_flat = np.empty(0, dtype=np.float64)
        alias_flat = np.empty(0, dtype=np.intp)
    return np.asarray(internal, dtype=np.intp), out_starts, sizes, prob_flat, alias_flat


def _export_lemma2(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    flat = sampler._flat_tables
    if flat is None:
        flat = _lemma2_flat_from_scalar(sampler)
    arrays, meta = _export_range_common(sampler)
    internal, out_starts, sizes, prob_flat, alias_flat = flat
    arrays.update(
        {
            "flat.internal": np.asarray(internal, dtype=np.intp),
            "flat.out_starts": np.asarray(out_starts, dtype=np.intp),
            "flat.sizes": np.asarray(sizes, dtype=np.intp),
            "flat.prob": np.asarray(prob_flat, dtype=np.float64),
            "flat.alias": np.asarray(alias_flat),
        }
    )
    meta["table_entry_count"] = sampler._table_entry_count
    meta["node_count"] = sampler._tree.node_count
    return arrays, meta


def _attach_lemma2(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.range_sampler import AliasAugmentedRangeSampler

    sampler = object.__new__(AliasAugmentedRangeSampler)
    _attach_range_common(sampler, arrays, meta)
    sampler._flat_tables = (
        arrays["flat.internal"],
        arrays["flat.out_starts"],
        arrays["flat.sizes"],
        arrays["flat.prob"],
        arrays["flat.alias"],
    )
    sampler._node_tables = [None] * meta["node_count"]
    sampler._np_node_tables = {}
    sampler._table_entry_count = meta["table_entry_count"]
    return sampler


def _sub_manifest(
    arrays: Dict[str, Any], meta: Dict[str, Any], prefix: str, key: str
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Strip a nested export's ``prefix.`` arrays and rehydrate its meta.

    ``rng_seed`` is stamped top-level by :func:`export_sampler` only, so
    nested sub-metas inherit the outer seed here (the nested structure's
    instance stream is a fallback anyway — engine draws always carry an
    explicit per-task rng).
    """
    sub_arrays = {
        name[len(prefix) :]: arr
        for name, arr in arrays.items()
        if name.startswith(prefix)
    }
    sub_meta = dict(meta[key])
    sub_meta["rng_seed"] = meta["rng_seed"]
    return sub_arrays, sub_meta


def _export_chunked(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    prob_mat, alias_mat, lengths, starts = sampler._ensure_chunk_matrix()
    arrays = {
        "keys": _numeric_array(sampler.keys, "ChunkedRangeSampler keys"),
        "weights": np.asarray(sampler.weights, dtype=np.float64),
        "chunk.prob": np.asarray(prob_mat, dtype=np.float64),
        "chunk.alias": np.asarray(alias_mat, dtype=np.intp),
        "chunk.lengths": np.asarray(lengths, dtype=np.intp),
        "chunk.starts": np.asarray(starts, dtype=np.intp),
        "chunk.weights": np.asarray(sampler._chunk_weights, dtype=np.float64),
        "fenwick": np.asarray(sampler._chunk_sums._tree, dtype=np.float64),
    }
    t_arrays, t_meta = _export_lemma2(sampler._t_chunk)
    arrays.update({f"tchunk.{name}": arr for name, arr in t_arrays.items()})
    meta = {
        "all_weights_equal": sampler._all_weights_equal,
        "chunk_size": sampler._chunk_size,
        "num_chunks": sampler._num_chunks,
        "plan_cache_size": sampler.plan_cache.capacity,
        "tchunk": t_meta,
    }
    return arrays, meta


def _attach_chunked(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.planner import plan_scope
    from repro.core.range_sampler import ChunkedRangeSampler
    from repro.substrates.fenwick import FenwickTree

    sampler = object.__new__(ChunkedRangeSampler)
    sampler.keys = _SharedSeq(arrays["keys"])
    sampler.weights = arrays["weights"]
    sampler._all_weights_equal = meta["all_weights_equal"]
    sampler._rng = ensure_rng(meta["rng_seed"])
    sampler._chunk_size = meta["chunk_size"]
    sampler._num_chunks = meta["num_chunks"]
    sampler._np_chunk_matrix = (
        arrays["chunk.prob"],
        arrays["chunk.alias"],
        arrays["chunk.lengths"],
        arrays["chunk.starts"],
    )
    sampler._chunk_tables = [None] * meta["num_chunks"]
    sampler._chunk_weights = _SharedSeq(arrays["chunk.weights"])
    # The Fenwick tree's query side only reads _tree[i]; a _SharedSeq
    # facade keeps prefix sums in native floats, matching the rebuilt
    # structure's arithmetic bit for bit.
    fenwick = object.__new__(FenwickTree)
    fenwick._tree = _SharedSeq(arrays["fenwick"])
    fenwick._size = meta["num_chunks"]
    sampler._chunk_sums = fenwick
    sampler._t_chunk = _attach_lemma2(*_sub_manifest(arrays, meta, "tchunk.", "tchunk"))
    sampler.plan_cache = plan_scope(sampler.plan_kind, meta["plan_cache_size"])
    return sampler


def _export_coverage(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    index = sampler._index
    if type(index).__name__ != "BSTIndex":
        raise ShmShareError(
            f"CoverageSampler over a {type(index).__name__} index cannot be "
            "shared (only the BSTIndex adapter exposes flat node arrays); "
            "use a spec token instead"
        )
    if sampler._backend == "alias":
        raise ShmShareError(
            'CoverageSampler backend="alias" holds ragged per-subtree '
            "tables; share the uniform or chunked backend, or use a spec "
            "token instead"
        )
    tree = index._tree
    arrays = {
        "keys": _numeric_array(tree.keys, "BSTIndex keys"),
        "weights": np.asarray(tree.weights, dtype=np.float64),
        "prefix": np.asarray(sampler._prefix, dtype=np.float64),
    }
    arrays.update(_export_tree(tree))
    meta = {
        "backend": sampler._backend,
        "level_bounds": [tuple(b) for b in tree.level_bounds()],
        "plan_cache_size": sampler.plan_cache.capacity,
    }
    if sampler._chunked is not None:
        c_arrays, c_meta = _export_chunked(sampler._chunked)
        arrays.update({f"cov.{name}": arr for name, arr in c_arrays.items()})
        meta["chunked"] = c_meta
    return arrays, meta


def _attach_coverage(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.coverage import BSTIndex, CoverageSampler
    from repro.core.planner import plan_scope

    index = object.__new__(BSTIndex)
    index._tree = _attach_tree(
        arrays, meta, _SharedSeq(arrays["keys"]), arrays["weights"]
    )
    sampler = object.__new__(CoverageSampler)
    sampler._index = index
    sampler._rng = ensure_rng(meta["rng_seed"])
    sampler._weights = _SharedSeq(arrays["weights"])
    sampler._prefix = arrays["prefix"]
    sampler._backend = meta["backend"]
    sampler._span_tables = {}
    sampler._chunked = None
    if "chunked" in meta:
        sampler._chunked = _attach_chunked(
            *_sub_manifest(arrays, meta, "cov.", "chunked")
        )
    sampler.plan_cache = plan_scope(
        sampler.plan_kind, meta.get("plan_cache_size")
    )
    return sampler


_EXPORTERS = {
    "AliasSampler": ("alias", _export_alias),
    "TreeWalkRangeSampler": ("treewalk", _export_treewalk),
    "AliasAugmentedRangeSampler": ("lemma2", _export_lemma2),
    "ChunkedRangeSampler": ("chunked", _export_chunked),
    "CoverageSampler": ("coverage", _export_coverage),
}

_ATTACHERS = {
    "alias": _attach_alias,
    "treewalk": _attach_treewalk,
    "lemma2": _attach_lemma2,
    "chunked": _attach_chunked,
    "coverage": _attach_coverage,
}


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def export_sampler(
    sampler: Any, rng_seed: int = DEFAULT_SEED
) -> Tuple[Dict[str, Any], List[SharedMemory]]:
    """Export ``sampler``'s structure arrays into shared-memory segments.

    Returns ``(manifest, segments)``. The manifest is small (segment
    names + O(log n) metadata) and picklable — wrap it with
    :func:`shm_token` to run it on the process backend. The caller owns
    the returned segments and must eventually ``close()`` + ``unlink()``
    them (:meth:`SamplingEngine.close` does this for segments created
    through :meth:`SamplingEngine.share`).

    ``rng_seed`` seeds the attached sampler's *instance* stream; batched
    engine runs normally override it per request with spawned seeds, so
    it only matters under ``seed=False`` engines.
    """
    entry = _EXPORTERS.get(type(sampler).__name__)
    if entry is None:
        supported = ", ".join(sorted(_EXPORTERS))
        raise ShmShareError(
            f"cannot share a {type(sampler).__name__} via shared memory "
            f"(supported: {supported}); use a spec token instead"
        )
    kind, export = entry
    arrays, meta = export(sampler)
    meta["rng_seed"] = int(rng_seed)
    entries, segments = _export_arrays(arrays)
    manifest = {"kind": kind, "meta": meta, "arrays": entries}
    return manifest, segments


def attach_sampler(manifest: Dict[str, Any]) -> Any:
    """Rebuild a sampler around the manifest's shared segments (read-only).

    O(arrays) mmap attaches plus O(log n) metadata work — no structure
    array is copied or pickled. Handles are kept alive for the life of
    the process (:data:`_ATTACHED`); the exporting parent owns unlink.
    Records the attach latency in the ``engine.shm_attach_us`` histogram.
    """
    start = perf_counter()
    kind = manifest["kind"]
    attach = _ATTACHERS.get(kind)
    if attach is None:
        raise ValueError(f"unknown shm manifest kind {kind!r}")
    arrays = {name: _attach_array(entry) for name, entry in manifest["arrays"].items()}
    sampler = attach(arrays, manifest["meta"])
    if obs.ENABLED:
        duration_us = (perf_counter() - start) * 1e6
        _ATTACH_US.observe(duration_us)
        # Also leave a trace-tagged span: attaches happen inside
        # process-backend workers mid-request, so the executing request's
        # trace ID (current-trace context) ties the attach cost into that
        # request's timeline once the delta is harvested home.
        attrs = {"kind": kind}
        trace = obs.current_trace()
        if trace is not None:
            attrs["trace"] = trace
        obs.REGISTRY.record_span("engine.shm_attach", duration_us, attrs)
    return sampler
