"""Zero-copy structure sharing for the process backend.

The ``"process"`` backend ships *build tokens* to its workers, and each
worker rebuilds the sampler once (``engine.worker_rebuilds``). For a big
structure that residency cost is a full O(n log n) construction **per
worker** — the arrays already sitting in the parent are rebuilt K times.

This module exports a built structure's flat arrays — alias prob/alias
tables, BST node arrays, prefix data — into named
:class:`multiprocessing.shared_memory.SharedMemory` blocks, and rebuilds
an equivalent sampler *around* those blocks on the worker side. The
``("shm", manifest)`` token (see :mod:`repro.engine.worker`) carries only
segment names, dtypes, shapes, and O(log n) metadata — a few hundred
bytes regardless of ``n`` — so "rebuilding" in a worker becomes an mmap
attach: no structure arrays are ever pickled, and no O(n) work runs in
the worker (asserted via the ``engine.serialized_bytes`` counter and the
``engine.shm_attach_us`` histogram in ``tests/engine/test_shm.py``).

Lifecycle
---------
Segments are created by :meth:`SamplingEngine.share` and **owned by the
parent**: ``SamplingEngine.close()`` unlinks them. Workers attach
read-only and keep their handles in a process-lifetime registry
(:data:`_ATTACHED`) — they never close or unlink, so a worker crash
cannot leak a segment (POSIX shm lives until *unlink* + last unmap; the
parent always unlinks, and dead workers' mappings vanish with them).
Attaching is done untracked (``track=False`` on Python 3.13+, the
``resource_tracker.unregister`` recipe below it) so a worker exiting
cannot prematurely unlink segments other workers still use.

Name-based attach is start-method agnostic: the same token works under
``fork`` and ``spawn`` (asserted in the spawn test).

Supported structures: :class:`~repro.core.alias.AliasSampler`,
:class:`~repro.core.range_sampler.TreeWalkRangeSampler`, and
:class:`~repro.core.range_sampler.AliasAugmentedRangeSampler` (the
Lemma-2 structure, flat-table form). Sharing anything else raises
:class:`ShmShareError` with a pointer back to the spec-token path.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory
from time import perf_counter
from typing import Any, Dict, List, Tuple

import numpy as np

from repro import obs
from repro.substrates.rng import DEFAULT_SEED, ensure_rng

__all__ = [
    "ShmShareError",
    "export_sampler",
    "attach_sampler",
    "shm_token",
    "manifest_nbytes",
    "unlink_segments",
]

_ATTACH_US = obs.histogram(
    "engine.shm_attach_us",
    "Microseconds to attach a shared-memory structure in a worker",
)

#: Process-lifetime keepalive: segment name -> open handle. A worker that
#: attached a structure must keep the mapping alive as long as the
#: resident sampler lives (forever, for a pool worker); re-attaching the
#: same segment reuses the handle.
_ATTACHED: Dict[str, SharedMemory] = {}


class ShmShareError(TypeError):
    """The sampler's structure cannot be exported to shared memory."""


def shm_token(manifest: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """The process-backend build token for an exported structure."""
    return ("shm", manifest)


def manifest_nbytes(manifest: Dict[str, Any]) -> int:
    """Total bytes of shared array payload the manifest references."""
    total = 0
    for _, dtype, shape in manifest["arrays"].values():
        n = 1
        for dim in shape:
            n *= dim
        total += n * np.dtype(dtype).itemsize
    return total


# ----------------------------------------------------------------------
# segment plumbing
# ----------------------------------------------------------------------


def _untracked_attach(name: str) -> SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    CPython's resource tracker registers *attaches* too (bpo-39959), so a
    worker exiting would unlink segments the parent and its siblings
    still use. Python 3.13 grew ``track=False``; older versions need the
    standard unregister recipe.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - depends on interpreter version
        pass
    shm = SharedMemory(name=name)
    try:  # pragma: no cover - CPython implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def unlink_segments(segments: List[SharedMemory]) -> None:
    """Close and unlink segments, tolerating already-gone names.

    Under the ``fork`` start method workers share the parent's resource
    tracker, so a worker's attach-side ``unregister`` (see
    :func:`_untracked_attach`) may have dropped the name the parent's
    ``unlink()`` is about to unregister — re-registering first keeps the
    tracker's books balanced instead of spraying ``KeyError`` tracebacks
    from its daemon.
    """
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - buffer already released
            pass
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker gone at shutdown
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _export_arrays(
    arrays: Dict[str, Any],
) -> Tuple[Dict[str, Tuple[str, str, Tuple[int, ...]]], List[SharedMemory]]:
    """Copy each array into its own named segment; return (entries, segments)."""
    entries: Dict[str, Tuple[str, str, Tuple[int, ...]]] = {}
    segments: List[SharedMemory] = []
    try:
        for name, array in arrays.items():
            arr = np.ascontiguousarray(array)
            seg = SharedMemory(create=True, size=max(1, arr.nbytes))
            segments.append(seg)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
            entries[name] = (seg.name, arr.dtype.str, tuple(arr.shape))
    except Exception:
        unlink_segments(segments)
        raise
    return entries, segments


def _attach_array(entry: Tuple[str, str, Tuple[int, ...]]) -> Any:
    """Read-only array view over a (possibly already attached) segment."""
    name, dtype, shape = entry
    seg = _ATTACHED.get(name)
    if seg is None:
        seg = _untracked_attach(name)
        _ATTACHED[name] = seg
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf)
    view.setflags(write=False)
    return view


class _SharedSeq:
    """Zero-copy list facade over a shared numeric array.

    ``AliasSampler._items`` and ``RangeSamplerBase.keys`` are
    contractually Python lists whose elements flow straight into query
    results, so an attached sampler must not hand numpy scalars back to
    callers (``json`` can't serialize them, and types would differ from
    a rebuilt sampler's). Elements convert on access instead of copying
    the array into every worker.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr: Any) -> None:
        self._arr = arr

    def __len__(self) -> int:
        return len(self._arr)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return self._arr[index].tolist()
        return self._arr[index].item()

    def __iter__(self) -> Any:
        return iter(self._arr.tolist())


def _numeric_array(values: Any, context: str) -> Any:
    """Coerce to a shareable numeric array, keeping the native dtype.

    Int items must round-trip as ints (``_SharedSeq`` converts back with
    ``.item()``), so the dtype is inferred rather than forced to float64.
    """
    try:
        arr = np.asarray(values)
    except (TypeError, ValueError):
        arr = None
    if arr is None or arr.dtype.kind not in "iuf":
        raise ShmShareError(
            f"{context} must be numeric to share via shared memory; "
            "use a spec token for object-keyed structures"
        )
    return arr


# ----------------------------------------------------------------------
# per-structure exporters / attachers
# ----------------------------------------------------------------------


def _export_alias(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    if sampler._np_tables is not None:
        prob, alias = sampler._np_tables
    else:
        prob = np.asarray(sampler._prob, dtype=np.float64)
        alias = np.asarray(sampler._alias, dtype=np.intp)
    arrays = {
        "items": _numeric_array(sampler._items, "AliasSampler items"),
        "weights": np.asarray(sampler._weights, dtype=np.float64),
        "prob": prob,
        "alias": np.asarray(alias, dtype=np.intp),
    }
    meta = {"total_weight": sampler._total_weight}
    return arrays, meta


def _attach_alias(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.alias import AliasSampler

    sampler = object.__new__(AliasSampler)
    items = _SharedSeq(arrays["items"])
    sampler._items = items
    sampler._items_view = items
    sampler._weights = arrays["weights"]
    sampler._prob = arrays["prob"]
    sampler._alias = arrays["alias"]
    sampler._np_tables = (arrays["prob"], arrays["alias"])
    sampler._total_weight = meta["total_weight"]
    sampler._rng = ensure_rng(meta["rng_seed"])
    return sampler


_TREE_ARRAYS = ("left", "right", "lo", "hi", "node_weight", "node_key", "leaf_node_of")


def _export_tree(tree: Any) -> Dict[str, Any]:
    """The StaticBST node arrays, keyed with a ``tree.`` prefix."""
    return {
        "tree.left": np.asarray(tree._left, dtype=np.intp),
        "tree.right": np.asarray(tree._right, dtype=np.intp),
        "tree.lo": np.asarray(tree._lo, dtype=np.intp),
        "tree.hi": np.asarray(tree._hi, dtype=np.intp),
        "tree.node_weight": np.asarray(tree._node_weight, dtype=np.float64),
        "tree.node_key": _numeric_array(tree._node_key, "StaticBST node keys"),
        "tree.leaf_node_of": np.asarray(tree._leaf_node_of, dtype=np.intp),
    }


def _attach_tree(arrays: Dict[str, Any], meta: Dict[str, Any], keys: Any, weights: Any) -> Any:
    from repro.substrates.bst import StaticBST

    tree = object.__new__(StaticBST)
    tree.keys = keys
    tree.weights = weights
    tree._left = arrays["tree.left"]
    tree._right = arrays["tree.right"]
    tree._lo = arrays["tree.lo"]
    tree._hi = arrays["tree.hi"]
    tree._node_weight = arrays["tree.node_weight"]
    tree._node_key = arrays["tree.node_key"]
    tree._leaf_node_of = arrays["tree.leaf_node_of"]
    tree._level_bounds = [tuple(b) for b in meta["level_bounds"]]
    tree._np_arrays = {
        "lo": arrays["tree.lo"],
        "hi": arrays["tree.hi"],
        "left": arrays["tree.left"],
        "right": arrays["tree.right"],
        "node_weight": arrays["tree.node_weight"],
        "leaf_weight": weights,
    }
    tree.root = 0
    return tree


def _export_range_common(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    arrays = {
        "keys": _numeric_array(sampler.keys, f"{type(sampler).__name__} keys"),
        "weights": np.asarray(sampler.weights, dtype=np.float64),
    }
    arrays.update(_export_tree(sampler._tree))
    meta = {
        "all_weights_equal": sampler._all_weights_equal,
        "level_bounds": [tuple(b) for b in sampler._tree.level_bounds()],
        "plan_cache_size": sampler.plan_cache.capacity,
    }
    return arrays, meta


def _attach_range_common(sampler: Any, arrays: Dict[str, Any], meta: Dict[str, Any]) -> None:
    from repro.core.plan_cache import QueryPlanCache

    sampler.keys = _SharedSeq(arrays["keys"])
    sampler.weights = arrays["weights"]
    sampler._all_weights_equal = meta["all_weights_equal"]
    sampler._tree = _attach_tree(arrays, meta, arrays["keys"], arrays["weights"])
    sampler._rng = ensure_rng(meta["rng_seed"])
    sampler.plan_cache = QueryPlanCache(meta["plan_cache_size"])


def _export_treewalk(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    return _export_range_common(sampler)


def _attach_treewalk(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.range_sampler import TreeWalkRangeSampler

    sampler = object.__new__(TreeWalkRangeSampler)
    _attach_range_common(sampler, arrays, meta)
    sampler._np_tree = (
        arrays["tree.left"],
        arrays["tree.right"],
        arrays["tree.node_weight"],
        arrays["tree.lo"],
    )
    return sampler


def _export_lemma2(sampler: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    if sampler._flat_tables is None:
        raise ShmShareError(
            "AliasAugmentedRangeSampler was built on the scalar path (no "
            "flat tables) — only the packed-build form is shareable; use a "
            "spec token for small structures"
        )
    arrays, meta = _export_range_common(sampler)
    internal, out_starts, sizes, prob_flat, alias_flat = sampler._flat_tables
    arrays.update(
        {
            "flat.internal": np.asarray(internal, dtype=np.intp),
            "flat.out_starts": np.asarray(out_starts, dtype=np.intp),
            "flat.sizes": np.asarray(sizes, dtype=np.intp),
            "flat.prob": np.asarray(prob_flat, dtype=np.float64),
            "flat.alias": np.asarray(alias_flat),
        }
    )
    meta["table_entry_count"] = sampler._table_entry_count
    meta["node_count"] = sampler._tree.node_count
    return arrays, meta


def _attach_lemma2(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Any:
    from repro.core.range_sampler import AliasAugmentedRangeSampler

    sampler = object.__new__(AliasAugmentedRangeSampler)
    _attach_range_common(sampler, arrays, meta)
    sampler._flat_tables = (
        arrays["flat.internal"],
        arrays["flat.out_starts"],
        arrays["flat.sizes"],
        arrays["flat.prob"],
        arrays["flat.alias"],
    )
    sampler._node_tables = [None] * meta["node_count"]
    sampler._np_node_tables = {}
    sampler._table_entry_count = meta["table_entry_count"]
    return sampler


_EXPORTERS = {
    "AliasSampler": ("alias", _export_alias),
    "TreeWalkRangeSampler": ("treewalk", _export_treewalk),
    "AliasAugmentedRangeSampler": ("lemma2", _export_lemma2),
}

_ATTACHERS = {
    "alias": _attach_alias,
    "treewalk": _attach_treewalk,
    "lemma2": _attach_lemma2,
}


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def export_sampler(
    sampler: Any, rng_seed: int = DEFAULT_SEED
) -> Tuple[Dict[str, Any], List[SharedMemory]]:
    """Export ``sampler``'s structure arrays into shared-memory segments.

    Returns ``(manifest, segments)``. The manifest is small (segment
    names + O(log n) metadata) and picklable — wrap it with
    :func:`shm_token` to run it on the process backend. The caller owns
    the returned segments and must eventually ``close()`` + ``unlink()``
    them (:meth:`SamplingEngine.close` does this for segments created
    through :meth:`SamplingEngine.share`).

    ``rng_seed`` seeds the attached sampler's *instance* stream; batched
    engine runs normally override it per request with spawned seeds, so
    it only matters under ``seed=False`` engines.
    """
    entry = _EXPORTERS.get(type(sampler).__name__)
    if entry is None:
        supported = ", ".join(sorted(_EXPORTERS))
        raise ShmShareError(
            f"cannot share a {type(sampler).__name__} via shared memory "
            f"(supported: {supported}); use a spec token instead"
        )
    kind, export = entry
    arrays, meta = export(sampler)
    meta["rng_seed"] = int(rng_seed)
    entries, segments = _export_arrays(arrays)
    manifest = {"kind": kind, "meta": meta, "arrays": entries}
    return manifest, segments


def attach_sampler(manifest: Dict[str, Any]) -> Any:
    """Rebuild a sampler around the manifest's shared segments (read-only).

    O(arrays) mmap attaches plus O(log n) metadata work — no structure
    array is copied or pickled. Handles are kept alive for the life of
    the process (:data:`_ATTACHED`); the exporting parent owns unlink.
    Records the attach latency in the ``engine.shm_attach_us`` histogram.
    """
    start = perf_counter()
    kind = manifest["kind"]
    attach = _ATTACHERS.get(kind)
    if attach is None:
        raise ValueError(f"unknown shm manifest kind {kind!r}")
    arrays = {name: _attach_array(entry) for name, entry in manifest["arrays"].items()}
    sampler = attach(arrays, manifest["meta"])
    if obs.ENABLED:
        duration_us = (perf_counter() - start) * 1e6
        _ATTACH_US.observe(duration_us)
        # Also leave a trace-tagged span: attaches happen inside
        # process-backend workers mid-request, so the executing request's
        # trace ID (current-trace context) ties the attach cost into that
        # request's timeline once the delta is harvested home.
        attrs = {"kind": kind}
        trace = obs.current_trace()
        if trace is not None:
            attrs["trace"] = trace
        obs.REGISTRY.record_span("engine.shm_attach", duration_us, attrs)
    return sampler
