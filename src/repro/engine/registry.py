"""String-keyed sampler registry and the ``build(spec, **params)`` factory.

Every P1–P7 structure (and the dynamic / external-memory / application
extensions) is registered here under a stable key, so experiments,
benchmarks, the CLI, and serving code construct samplers through one
factory instead of scattering constructor imports. Targets are stored as
dotted paths and imported lazily — importing :mod:`repro.engine` stays
cheap and cycle-free.

``build(spec, **params)`` resolves the target and calls its ``build``
classmethod (provided by :class:`~repro.engine.protocol.EngineSampler`,
overridden by composite structures such as the EM sampler, which
assembles its simulated machine from ``block_size``/``memory_blocks``
when no ``machine`` is passed). Registry-built samplers are the exact
classes the constructors produce — same params, same seed, byte-identical
sample streams (asserted in ``tests/engine/test_registry.py``).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from difflib import get_close_matches
from typing import Any, Dict, Iterator, List, Tuple

__all__ = ["REGISTRY", "SamplerEntry", "SamplerRegistry", "build"]


@dataclass(frozen=True)
class SamplerEntry:
    """One registry row: key, lazy target, and catalogue metadata."""

    key: str
    #: ``"module.path:AttrName"`` — imported on first build/resolve.
    target: str
    #: Paper problem tag (``"P3"``, ``"§8"``, ...), for ``engine list``.
    problem: str
    summary: str
    #: Parameters ``engine run`` needs to synthesize a demo workload;
    #: free-form hints for humans otherwise.
    params: Tuple[str, ...] = field(default_factory=tuple)

    def resolve(self) -> Any:
        module_name, _, attr = self.target.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError:
            raise ImportError(
                f"registry target {self.target!r} for spec {self.key!r} "
                f"does not exist"
            ) from None


class SamplerRegistry:
    """Mutable mapping of spec key → :class:`SamplerEntry`."""

    def __init__(self) -> None:
        self._entries: Dict[str, SamplerEntry] = {}

    def register(
        self,
        key: str,
        target: str,
        *,
        problem: str,
        summary: str,
        params: Tuple[str, ...] = (),
    ) -> SamplerEntry:
        """Add (or replace) a spec; returns the stored entry."""
        if not key or any(ch.isspace() for ch in key):
            raise ValueError(f"registry key must be non-empty and space-free: {key!r}")
        entry = SamplerEntry(
            key=key, target=target, problem=problem, summary=summary, params=params
        )
        self._entries[key] = entry
        return entry

    def get(self, key: str) -> SamplerEntry:
        entry = self._entries.get(key)
        if entry is None:
            hint = ""
            close = get_close_matches(key, self._entries, n=3)
            if close:
                hint = f" (did you mean {', '.join(repr(c) for c in close)}?)"
            raise KeyError(f"unknown sampler spec {key!r}{hint}")
        return entry

    def resolve(self, key: str) -> Any:
        """The class or factory behind ``key`` (imported, spec stamped)."""
        entry = self.get(key)
        target = entry.resolve()
        # Stamp the registry key on protocol classes so describe() can
        # report it; plain factory functions are left untouched.
        if isinstance(target, type) and getattr(target, "engine_spec", None) != key:
            try:
                target.engine_spec = key
            except (AttributeError, TypeError):
                pass
        return target

    def build(self, key: str, **params: Any) -> Any:
        """Construct the sampler registered under ``key``.

        Equivalent to calling the class's ``build(**params)`` (itself the
        constructor unless overridden) — registry construction adds no
        wrapper and changes no stream.
        """
        target = self.resolve(key)
        builder = getattr(target, "build", None)
        if builder is not None and isinstance(target, type):
            sampler = builder(**params)
        else:
            sampler = target(**params)
        # Factory targets (composite builders) return instances of classes
        # registered under other keys (or none); stamp the instance so
        # describe() reports the spec it was built as. Slotted classes
        # without the attribute slot keep their class-level stamp.
        if getattr(sampler, "engine_spec", None) != key:
            try:
                sampler.engine_spec = key
            except (AttributeError, TypeError):
                pass
        return sampler

    def specs(self) -> List[SamplerEntry]:
        """All entries, sorted by key (the ``engine list`` table)."""
        return [self._entries[key] for key in sorted(self._entries)]

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


def _populate(registry: SamplerRegistry) -> None:
    """Register every shipped structure. Keys are the public contract."""
    entries = [
        # -- P1: weighted set sampling -------------------------------------
        ("alias", "repro.core.alias:AliasSampler", "P1",
         "Theorem 1 alias structure: O(n) build, O(1) per draw",
         ("items", "weights", "rng")),
        # -- P2: tree sampling ---------------------------------------------
        ("tree.topdown", "repro.core.tree_sampling:TreeSampler", "P2",
         "§3.2 top-down subtree sampling, O(height) per draw",
         ("tree", "rng")),
        ("tree.flat", "repro.core.tree_sampling:FlatTreeSampler", "P2",
         "Proposition 1 reduction: subtree queries over the DFS leaf order",
         ("tree", "rng")),
        # -- P3: weighted range sampling -----------------------------------
        ("range.treewalk", "repro.core.range_sampler:TreeWalkRangeSampler", "P3",
         "§3.2 BST walk: O(n) space, O((1+s) log n) query",
         ("keys", "weights", "rng")),
        ("range.lemma2", "repro.core.range_sampler:AliasAugmentedRangeSampler", "P3",
         "Lemma 2: O(n log n) space, O(log n + s) query",
         ("keys", "weights", "rng")),
        ("range.chunked", "repro.core.range_sampler:ChunkedRangeSampler", "P3",
         "Theorem 3: O(n) space, O(log n + s) query (default choice)",
         ("keys", "weights", "rng")),
        ("range.naive", "repro.core.naive:NaiveRangeSampler", "P3",
         "report-then-sample baseline, O(log n + |S_q| + s)",
         ("keys", "weights", "rng")),
        ("range.dependent", "repro.core.dependent:DependentRangeSampler", "§2",
         "baseline WITHOUT cross-query independence (what IQS fixes)",
         ("keys", "rng")),
        ("range.integer", "repro.core.integer_range:IntegerRangeSampler", "P13",
         "§4.3 integer universes: O(log log U + s) query",
         ("keys", "weights", "rng")),
        ("range.dynamic", "repro.core.dynamic_range:DynamicRangeSampler", "P12",
         "§4.3 treap: O(log n) updates, O((1+s) log n) query",
         ("rng",)),
        ("range.em", "repro.em.em_range_sampler:EMRangeSampler", "§8",
         "external-memory B-tree with per-subtree sample pools",
         ("values", "weights", "block_size", "memory_blocks", "rng")),
        # -- P4/P5: coverage (Theorem 5) -----------------------------------
        ("coverage", "repro.core.coverage:CoverageSampler", "P4/P5",
         "Theorem 5 over any coverable index (pass index=...)",
         ("index", "backend", "rng")),
        ("coverage.kdtree", "repro.engine.factories:build_kdtree_coverage", "P4",
         "Theorem 5 over a kd-tree: O(n^(1-1/d) + s) rectangle sampling",
         ("points", "weights", "rng")),
        ("coverage.quadtree", "repro.engine.factories:build_quadtree_coverage", "P4",
         "Theorem 5 over a quadtree (clustered point sets)",
         ("points", "weights", "rng")),
        ("coverage.rangetree", "repro.engine.factories:build_rangetree_coverage", "P4",
         "Theorem 5 over a range tree: O(log^d n + s) rectangle sampling",
         ("points", "weights", "rng")),
        ("coverage.halfplane", "repro.engine.factories:build_halfplane_coverage", "P11",
         "Theorem 5 over the convex-layer halfplane index",
         ("points", "weights", "rng")),
        ("complement.approx", "repro.engine.factories:build_complement_approx", "P5",
         "§6 approximate covers for range-complement sampling",
         ("keys", "weights", "rng")),
        ("complement.precomputed", "repro.engine.factories:build_complement_precomputed",
         "P5", "§6 with per-node precomputed acceptance tables",
         ("keys", "weights", "rng")),
        # -- P6/P7: set union, fair near neighbor --------------------------
        ("setunion", "repro.core.set_union:SetUnionSampler", "P6",
         "Theorem 8: O(n) space, O(g log^2 n) expected query",
         ("family", "rng")),
        ("setunion.naive", "repro.core.naive:NaiveSetUnionSampler", "P6",
         "materialise-the-union baseline, Θ(Σ|S_i|) per query",
         ("family", "rng")),
        ("fair_nn", "repro.apps.fair_nn:FairNearNeighbor", "P7",
         "uniform independent r-near neighbors via shifted grids + §7",
         ("points", "radius", "rng")),
        # -- dynamic extensions --------------------------------------------
        ("dynamic.fenwick", "repro.core.dynamic:FenwickDynamicSampler", "P10",
         "O(log n) insert/delete/update/sample over a Fenwick tree",
         ("rng",)),
        ("dynamic.bucket", "repro.core.dynamic:BucketDynamicSampler", "P10",
         "O(1) amortised updates via power-of-two buckets + rejection",
         ("rng",)),
        ("dynamic.approx", "repro.core.approximate:ApproximateDynamicSampler", "P14",
         "Direction 4: ε-approximate probabilities, O(1) updates",
         ("epsilon", "rng")),
        # -- external-memory set sampling ----------------------------------
        ("em.setpool", "repro.em.sample_pool:SamplePoolSetSampler", "§8",
         "EM set sampling with one refillable sample pool",
         ("values", "block_size", "memory_blocks", "rng")),
        ("em.setpool.deamortized", "repro.em.deamortized:DeamortizedSamplePoolSetSampler",
         "§8", "worst-case-I/O variant: incremental background refills",
         ("values", "block_size", "memory_blocks", "rng")),
        ("em.naive", "repro.em.sample_pool:NaiveEMSetSampler", "§8",
         "one random block I/O per sample (the baseline)",
         ("values", "block_size", "memory_blocks", "rng")),
        # -- applications --------------------------------------------------
        ("table", "repro.apps.table:SampledTable", "app",
         "row-store facade: sample_where over indexed columns",
         ("rows", "rng")),
    ]
    for key, target, problem, summary, params in entries:
        registry.register(key, target, problem=problem, summary=summary,
                          params=tuple(params))


#: The process-wide registry every factory call goes through.
REGISTRY = SamplerRegistry()
_populate(REGISTRY)


def build(spec: str, **params: Any) -> Any:
    """Construct the sampler registered under ``spec`` (module-level sugar)."""
    return REGISTRY.build(spec, **params)
