"""Synthesized demo workloads for every registry spec.

``engine run <spec>`` (CLI), the registry smoke tests, and the CI smoke
step all need a small-but-representative instance of each structure plus
a valid :class:`~repro.engine.protocol.QueryRequest` for it. This module
is the single source of those fixtures, so adding a registry key comes
with exactly one place to teach the tooling how to drive it.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.engine.protocol import QueryRequest
from repro.engine.registry import REGISTRY

__all__ = ["demo_build", "demo_request"]

#: Structure size used by the synthesized workloads; big enough to make
#: batch kernels and pool refills reachable, small enough for CI.
DEMO_N = 64


def _demo_keys(n: int) -> list:
    return [float(i) for i in range(1, n + 1)]


def _demo_points(n: int) -> list:
    side = max(2, int(n ** 0.5))
    return [(float(i % side), float(i // side)) for i in range(n)]


def demo_build(spec: str, n: int = DEMO_N, rng: int = 1) -> Tuple[Any, QueryRequest]:
    """A freshly built sampler for ``spec`` plus a request that exercises it.

    Deterministic: same ``(spec, n, rng)`` → identical structure and
    request, so two calls support (state, seed) replay comparisons.
    """
    from repro.engine.registry import build

    keys = _demo_keys(n)
    lo, hi = keys[n // 8], keys[(5 * n) // 8]
    s = 4

    if spec == "alias":
        weights = [1.0 + (i % 5) for i in range(n)]
        return build(spec, items=keys, weights=weights, rng=rng), QueryRequest(
            op="sample", s=s
        )
    if spec in ("tree.topdown", "tree.flat"):
        from repro.core.tree_sampling import Tree

        nested = [
            [(f"leaf{i}", 1.0 + i % 3) for i in range(4)],
            [(f"leaf{4 + i}", 2.0) for i in range(4)],
        ]
        tree = Tree.from_nested(nested)
        return build(spec, tree=tree, rng=rng), QueryRequest(
            op="sample", args=(tree.root,), s=s
        )
    if spec == "range.em":
        return build(
            spec, values=keys, rng=rng, block_size=8, memory_blocks=4
        ), QueryRequest(op="sample", args=(lo, hi), s=s)
    if spec == "range.dynamic":
        sampler = build(spec, rng=rng)
        for key in keys:
            sampler.insert(key, 1.0)
        return sampler, QueryRequest(op="sample", args=(lo, hi), s=s)
    if spec == "range.integer":
        return build(spec, keys=list(range(1, n + 1)), rng=rng), QueryRequest(
            op="sample", args=(int(lo), int(hi)), s=s
        )
    if spec.startswith("range."):
        return build(spec, keys=keys, rng=rng), QueryRequest(
            op="sample", args=(lo, hi), s=s
        )
    if spec == "coverage":
        from repro.core.coverage import BSTIndex

        return build(spec, index=BSTIndex(keys), rng=rng), QueryRequest(
            op="sample", args=((lo, hi),), s=s
        )
    if spec == "coverage.halfplane":
        # Halfplane queries are (a, b): sample among points with y <= a·x + b.
        return build(spec, points=_demo_points(n), rng=rng), QueryRequest(
            op="sample", args=((0.0, 3.5),), s=s
        )
    if spec.startswith("coverage."):
        rect = ((0.0, 3.0), (0.0, 3.0))
        return build(spec, points=_demo_points(n), rng=rng), QueryRequest(
            op="sample", args=(rect,), s=s
        )
    if spec.startswith("complement."):
        return build(spec, keys=keys, rng=rng), QueryRequest(
            op="sample", args=((lo, hi),), s=s
        )
    if spec.startswith("setunion"):
        family = [list(range(j * 8, (j + 1) * 8 + 2)) for j in range(6)]
        return build(spec, family=family, rng=rng), QueryRequest(
            op="sample", args=([0, 1, 2],), s=s
        )
    if spec == "fair_nn":
        return build(spec, points=_demo_points(n), radius=2.0, rng=rng), QueryRequest(
            op="sample", args=((3.0, 3.0),), s=s
        )
    if spec.startswith("dynamic."):
        if spec == "dynamic.approx":
            sampler = build(spec, epsilon=0.1, rng=rng)
        else:
            sampler = build(spec, rng=rng)
        for index, key in enumerate(keys):
            sampler.insert(key, 1.0 + index % 3)
        return sampler, QueryRequest(op="sample", s=s)
    if spec.startswith("em."):
        return build(
            spec, values=keys, rng=rng, block_size=8, memory_blocks=4
        ), QueryRequest(op="sample", s=s)
    if spec == "table":
        rows = [{"id": i, "value": float(i)} for i in range(n)]
        table = build(spec, rows=rows, rng=rng)
        table.create_index("value")
        return table, QueryRequest(op="sample", args=("value", lo, hi), s=s)
    if spec in REGISTRY:
        raise NotImplementedError(f"no demo workload defined for spec {spec!r}")
    REGISTRY.get(spec)  # raises KeyError with did-you-mean hints
    raise AssertionError("unreachable")


def demo_request(spec: str, s: int = 4) -> QueryRequest:
    """The demo request for ``spec`` alone (args without the structure)."""
    _, request = demo_build(spec, n=DEMO_N)
    return QueryRequest(op=request.op, args=request.args, s=s)
