"""Batched query execution with per-request RNG streams and backends.

:class:`SamplingEngine` turns a batch of
:class:`~repro.engine.protocol.QueryRequest` into an order-preserving
list of :class:`~repro.engine.protocol.QueryResult`:

* **Independence by seed-spawning.** Request ``i`` without an explicit
  seed runs on ``derive_seed(engine_seed, i)`` (stateless SplitMix64
  spawning in :mod:`repro.substrates.rng`), so every request draws from
  its own stream, the whole batch is a pure function of the engine seed,
  and backends that preserve per-request streams produce identical
  results. Construct with ``seed=None`` to instead let requests consume
  the sampler's own instance stream serially (the classic single-stream
  behaviour).
* **Composable placement × execution layers.** The engine stacks two
  orthogonal decisions: a **placement**
  (:mod:`repro.engine.placement` — ``"local"`` runs requests against
  the whole structure, ``"sharded"`` splits each request's ``s``
  multinomially over ``shards`` contiguous key-space pieces, §4.1) over
  an **execution** backend (``"serial"`` in submission order;
  ``"thread"`` over a :class:`~concurrent.futures.ThreadPoolExecutor`
  — profitable when queries spend their time in NumPy batch kernels,
  which drop the GIL; ``"process"`` over persistent worker processes,
  :mod:`repro.engine.worker` — for CPU-bound scalar samplers the GIL
  serializes). Under the local placement the process backend executes
  whole requests against worker-resident rebuilds from picklable build
  tokens; under the sharded placement it keeps **one shard resident
  per worker** (:mod:`repro.engine.execution`), shipped once via
  shared memory, with per-request traffic a few ints per shard. Legacy
  single-string backends remain aliases — ``"shard"`` is
  ``placement="sharded", backend="thread"``, byte-identical.
  docs/ARCHITECTURE.md has the placement × execution matrix.
* **Error capture.** Per-request failures (empty interval, bad ``s``, a
  worker process dying mid-batch) are caught into ``result.error``
  instead of poisoning the batch; ``errors="raise"`` restores fail-fast
  behaviour.
* **Zero-copy structure sharing.** :meth:`SamplingEngine.share` exports
  a built structure's arrays into shared memory
  (:mod:`repro.engine.shm`) and returns an ``("shm", manifest)`` token:
  process-backend workers attach read-only instead of rebuilding, and
  :meth:`SamplingEngine.close` unlinks the segments.
* **Observability.** ``engine.batches`` / ``engine.requests`` /
  ``engine.request_errors`` / ``engine.worker_rebuilds`` /
  ``engine.serialized_bytes`` / ``engine.shards`` counters, the
  ``engine.shard_merge_us`` and ``engine.shm_attach_us`` histograms, and
  the ``engine.run`` span feed :mod:`repro.obs` when metrics are
  enabled.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.engine.placement import (
    DEFAULT_SHARDS,
    PLACEMENTS,
    make_placement,
    normalize_backend,
)
from repro.engine.protocol import QueryRequest, QueryResult, Sampler
from repro.engine.registry import build
from repro.errors import WorkerCrashedError
from repro.substrates.rng import DEFAULT_SEED, derive_seed, ensure_rng

__all__ = ["BACKENDS", "PLACEMENTS", "SamplingEngine", "spec_token"]

#: Accepted single-string backends (legacy spelling; ``"shard"`` is the
#: alias for ``placement="sharded", backend="thread"``).
BACKENDS = ("serial", "thread", "process", "shard")

_BATCHES = obs.counter("engine.batches", "SamplingEngine.run invocations")
_REQUESTS = obs.counter("engine.requests", "Requests executed by the engine")
_ERRORS = obs.counter(
    "engine.request_errors", "Requests whose execution raised (captured)"
)
_REBUILDS = obs.counter(
    "engine.worker_rebuilds",
    "Sampler rebuilds performed by process-backend workers",
)
_SERIALIZED = obs.counter(
    "engine.serialized_bytes",
    "Build-token bytes pickled to process-backend workers (per chunk)",
)
_HARVESTS = obs.counter(
    "engine.harvested_chunks",
    "Worker metric deltas merged into the parent registry",
)
_REQUEST_US = obs.histogram(
    "engine.request_us",
    "Per-request end-to-end sampler execution latency (microseconds)",
)


def _attach_flight(error: Exception, trace_id: Optional[str]) -> None:
    """Stamp the trace's flight records onto a captured exception."""
    try:
        error.flight_records = obs.RECORDER.for_trace(trace_id)
    except Exception:  # exceptions with __slots__ cannot carry extras
        pass


def spec_token(spec: str, params: Mapping[str, Any]) -> Tuple[Any, ...]:
    """The picklable build token for ``build(spec, **params)``.

    Parameter items are sorted by name so equal dicts yield equal tokens
    — and therefore hit the same worker-resident sampler cache entry.
    """
    return ("spec", spec, tuple(sorted(params.items())))


class SamplingEngine:
    """Executor for batches of sampling requests over protocol samplers.

    Parameters
    ----------
    backend:
        The execution backend: ``"serial"``, ``"thread"``, or
        ``"process"`` (or the legacy alias ``"shard"``, which is
        ``placement="sharded", backend="thread"``).
    placement:
        ``"local"`` (default) or ``"sharded"`` — where requests run
        (:mod:`repro.engine.placement`). ``placement="sharded"``
        composes with any execution backend; ``backend="process"``
        under it keeps one shard resident per worker process.
    max_workers:
        Pool width (thread/process execution, shard fan-out); defaults
        to ``min(8, cpu_count)``.
    seed:
        Engine master seed for per-request stream spawning. ``None``
        keeps the default policy seed (:data:`repro.substrates.rng.DEFAULT_SEED`);
        pass ``seed=False`` to disable spawning entirely and let every
        request consume the sampler's instance stream (forces serial
        execution semantics per sampler).
    errors:
        ``"capture"`` (default) stores per-request exceptions on the
        result; ``"raise"`` propagates the first failure (in submission
        order for the fan-out backends).
    shards:
        Shard count for the sharded placement (default
        :data:`~repro.engine.placement.DEFAULT_SHARDS`); clamped to the
        structure's key count at run time.
    mp_context:
        Start method for the process backend's pool (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` keeps the platform
        default. Shared-memory tokens attach by segment name, so they
        work under every start method.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        seed: Any = None,
        errors: str = "capture",
        shards: Optional[int] = None,
        mp_context: Optional[str] = None,
        placement: Optional[str] = None,
    ):
        self.placement, self.execution = normalize_backend(backend, placement)
        if errors not in ("capture", "raise"):
            raise ValueError(f"errors must be 'capture' or 'raise', got {errors!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if shards is not None and (
            not isinstance(shards, int) or isinstance(shards, bool) or shards < 1
        ):
            raise ValueError(f"shards must be an int >= 1, got {shards!r}")
        self.backend = backend
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.shards = shards if shards is not None else DEFAULT_SHARDS
        self._placement = make_placement(self.placement, self.shards)
        if seed is False:
            self._seed: Optional[int] = None
        elif seed is None:
            self._seed = DEFAULT_SEED
        elif isinstance(seed, int):
            self._seed = seed
        else:
            raise TypeError(f"seed must be an int, None, or False, got {seed!r}")
        if mp_context is not None:
            methods = multiprocessing.get_all_start_methods()
            if mp_context not in methods:
                raise ValueError(
                    f"unknown mp_context {mp_context!r}; choose from {methods}"
                )
        self._mp_context = mp_context
        self._errors = errors
        self._pool: Optional[ProcessPoolExecutor] = None
        # Shared-memory exports this engine owns: id(sampler) -> (sampler,
        # token) memo (the strong ref pins the id), plus the segments to
        # unlink at close().
        self._shm_tokens: Dict[int, Tuple[Any, Tuple[Any, ...]]] = {}
        self._shm_segments: List[Any] = []

    @property
    def seed(self) -> Optional[int]:
        """The engine master seed (``None`` = instance-stream mode)."""
        return self._seed

    def seeds_for(self, requests: Sequence[QueryRequest]) -> List[Optional[int]]:
        """The effective per-request seed of each request in a batch."""
        return [
            request.seed
            if request.seed is not None
            else (None if self._seed is None else derive_seed(self._seed, index))
            for index, request in enumerate(requests)
        ]

    def trace_ids_for(self, requests: Sequence[QueryRequest]) -> List[str]:
        """The effective trace ID of each request in a batch.

        Explicit ``request.trace_id`` wins; otherwise the ID is a
        stateless hash of the request's seed base and batch index
        (:func:`repro.obs.trace_id_for`) — deterministic, derived from
        the same seed stream as the per-request RNG seeds but
        domain-separated from it, and consuming no randomness, so sample
        streams are byte-identical whether or not anyone looks at the
        trace.
        """
        base = DEFAULT_SEED if self._seed is None else self._seed
        return [
            request.trace_id
            if request.trace_id is not None
            else obs.trace_id_for(
                request.seed if request.seed is not None else base, index
            )
            for index, request in enumerate(requests)
        ]

    def _assign_traces(self, requests: Sequence[QueryRequest]) -> List[str]:
        """Stamp engine-derived trace IDs onto requests lacking one."""
        traces = self.trace_ids_for(requests)
        for request, trace in zip(requests, traces):
            if request.trace_id is None:
                # QueryRequest is frozen for hashing/equality hygiene;
                # the engine is the one sanctioned writer of this field.
                object.__setattr__(request, "trace_id", trace)
        return traces

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down the pool and unlink shared segments (idempotent).

        The engine owns every segment created through :meth:`share`;
        unlinking after the pool drains means no segment can leak even
        when workers crashed mid-batch — dead workers' mappings vanish
        with them, and unlink removes the name.
        """
        # Placement first: sharded views own their runners (thread pools,
        # shard-resident worker pools), and those workers must exit before
        # the segments they attached are unlinked.
        self._placement.close()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        segments, self._shm_segments = self._shm_segments, []
        self._shm_tokens.clear()
        if segments:
            from repro.engine import shm

            shm.unlink_segments(segments)

    def share(self, sampler: Sampler) -> Tuple[Any, ...]:
        """Export ``sampler``'s structure to shared memory; return its token.

        The returned ``("shm", manifest)`` token is picklable and tiny
        (segment names plus O(log n) metadata) — pass it to
        :meth:`run_token` and process-backend workers mmap-attach the
        parent's arrays read-only instead of rebuilding or unpickling
        them. Repeated calls with the same sampler instance reuse the
        first export. Segments live until :meth:`close`.

        Raises :class:`~repro.engine.shm.ShmShareError` for structures
        without a shared-memory exporter (fall back to spec tokens).
        """
        from repro.engine import shm

        memo = self._shm_tokens.get(id(sampler))
        if memo is not None:
            return memo[1]
        manifest, segments = shm.export_sampler(
            sampler, rng_seed=DEFAULT_SEED if self._seed is None else self._seed
        )
        self._shm_segments.extend(segments)
        token = shm.shm_token(manifest)
        self._shm_tokens[id(sampler)] = (sampler, token)
        return token

    def __enter__(self) -> "SamplingEngine":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def run(
        self, sampler: Sampler, requests: Iterable[QueryRequest]
    ) -> List[QueryResult]:
        """Execute ``requests`` against ``sampler``; results keep order.

        Legal for every placement × execution combination except
        local × process (whole requests cannot ship an already-built
        structure to a worker; use :meth:`run_spec` / :meth:`run_token`
        there). Under sharded × process the structure stays local and
        only shard sub-draws cross the process boundary, so built
        samplers are fine.
        """
        if self.placement == "local" and self.execution == "process":
            raise ValueError(
                "the process backend executes picklable build tokens, not "
                "already-built samplers; use run_spec(spec, params, requests) "
                "or run_token(token, requests) — or compose it with "
                "placement='sharded', which ships shard sub-draws instead"
            )
        batch = list(requests)
        enabled = obs.ENABLED
        if enabled:
            _BATCHES.inc()
            _REQUESTS.add(len(batch))
        seeds = self.seeds_for(batch)
        self._assign_traces(batch)
        if enabled:
            with obs.span(
                "engine.run",
                backend=self.backend,
                requests=len(batch),
                sampler=type(sampler).__name__,
            ):
                return self._dispatch(sampler, batch, seeds)
        return self._dispatch(sampler, batch, seeds)

    def run_spec(
        self, spec: str, params: dict, requests: Iterable[QueryRequest]
    ) -> Tuple[Sampler, List[QueryResult]]:
        """Build ``spec`` through the registry, run the batch, return both.

        Under the process backend the batch executes against
        worker-resident rebuilds of ``(spec, params)``; the locally built
        sampler is returned for inspection and is byte-equivalent to the
        workers' copies (registry construction is deterministic).
        """
        sampler = build(spec, **params)
        if self.placement == "local" and self.execution == "process":
            return sampler, self.run_token(spec_token(spec, params), requests)
        return sampler, self.run(sampler, requests)

    def run_token(
        self, token: Tuple[Any, ...], requests: Iterable[QueryRequest]
    ) -> List[QueryResult]:
        """Execute a batch against a build token on the process pool.

        ``token`` is any :mod:`repro.engine.worker` build token —
        normally :func:`spec_token`'s ``("spec", spec, params_items)``.
        The token (and thus every build parameter) must be picklable.
        Only meaningful for the local × process combination.
        """
        if self.placement != "local" or self.execution != "process":
            raise ValueError(
                f"run_token requires backend='process', not {self.backend!r}"
            )
        try:
            key = pickle.dumps(token)
        except Exception as exc:
            raise TypeError(
                f"process-backend build token must be picklable "
                f"(rng must be an int seed, params plain data): {exc}"
            ) from exc
        batch = list(requests)
        enabled = obs.ENABLED
        if enabled:
            _BATCHES.inc()
            _REQUESTS.add(len(batch))
        seeds = self.seeds_for(batch)
        self._assign_traces(batch)
        jobs = list(zip(batch, seeds))
        spec = str(token[1]) if len(token) > 1 else "?"
        if enabled:
            with obs.span(
                "engine.run",
                backend=self.backend,
                requests=len(batch),
                sampler=spec,
            ):
                return self._dispatch_process(key, token, jobs, spec)
        return self._dispatch_process(key, token, jobs, spec)

    def explain(
        self, sampler: Sampler, request: QueryRequest
    ) -> Dict[str, Any]:
        """Plan ``request`` without executing any draws.

        Runs the planning half of the plan → execute split against the
        placement's view of ``sampler`` (so under the sharded placement
        the result describes the fan-out plan, sub-plans included) and
        reports it as plain data: the plan's cover spans and weights,
        whether it came out of the plan store (``"cached"``) or was
        built cold, and — for sharded plans — the deterministic expected
        budget split ``s · w_j / W`` per shard. Planning consumes no
        randomness, so explaining a request leaves every seeded stream
        untouched (the plan store does warm up, exactly as a real
        request would warm it).

        Raises :class:`TypeError` for structures with no planning
        surface and :class:`NotImplementedError` for range samplers
        that opt out of the plan layer.
        """
        view = self._placement.view(sampler, self)
        planner = getattr(view, "plan_request", None)
        if planner is None:
            raise TypeError(
                f"{type(sampler).__name__} has no query-planning surface "
                f"(no plan_request); --explain needs a planful structure"
            )
        scope = getattr(view, "plan_cache", None)
        misses_before = scope.misses if scope is not None else None
        plan = planner(request)
        info = plan.describe()
        info["cached"] = (
            scope is not None and scope.misses == misses_before
        )
        info["placement"] = self.placement
        if getattr(view, "plan_kind", None) == "sharded":
            active, sub_plans = plan.payload
            total = sum(weight for _, _, _, weight in active)
            info["budget_split"] = [
                {
                    "shard": j,
                    "span": (a, b),
                    "weight": weight,
                    "expected_quota": (
                        request.s * weight / total if total > 0 else 0.0
                    ),
                }
                for j, a, b, weight in active
            ]
            info["sub_plans"] = (
                [
                    sub.describe() if sub is not None else None
                    for sub in sub_plans
                ]
                if sub_plans is not None
                else None
            )
        return info

    # ------------------------------------------------------------------

    def _dispatch(
        self,
        sampler: Sampler,
        batch: List[QueryRequest],
        seeds: List[Optional[int]],
    ) -> List[QueryResult]:
        # The placement decides what the requests execute against (the
        # sampler itself, or an engine-owned sharded view with an
        # execution runner bound); under the sharded placement requests
        # run in submission order and the parallelism lives *inside*
        # each request's shard fan-out.
        sampler = self._placement.view(sampler, self)
        jobs = list(zip(batch, seeds))
        if (
            self.placement == "local"
            and self.execution == "thread"
            and len(jobs) > 1
            and self.max_workers > 1
        ):
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(
                    pool.map(lambda job: self._execute_one(sampler, *job), jobs)
                )
        return [self._execute_one(sampler, request, seed) for request, seed in jobs]

    def _execute_one(
        self, sampler: Sampler, request: QueryRequest, seed: Optional[int]
    ) -> QueryResult:
        enabled = obs.ENABLED
        spec = getattr(sampler, "engine_spec", None) or type(sampler).__name__
        trace_token = obs.set_current_trace(request.trace_id) if enabled else None
        try:
            started = perf_counter() if enabled else 0.0
            try:
                result = sampler.execute(
                    request, rng=None if seed is None else ensure_rng(seed)
                )
                result.seed = seed
            except Exception as exc:
                if self._errors == "raise":
                    raise
                result = QueryResult(
                    request=request,
                    values=None,
                    seed=seed,
                    error=exc,
                    trace_id=request.trace_id,
                )
                if enabled:
                    _ERRORS.inc()
                    result.elapsed_s = perf_counter() - started
            if enabled:
                self._record_result(result, spec)
            return result
        finally:
            if trace_token is not None:
                obs.reset_current_trace(trace_token)

    def _record_result(self, result: QueryResult, spec: str) -> None:
        """Feed one settled request into the latency histogram and the
        flight recorder; flush matching records onto captured errors."""
        duration_us = (result.elapsed_s or 0.0) * 1e6
        if result.ok:
            _REQUEST_US.observe(duration_us)
        obs.RECORDER.record(
            trace=result.trace_id,
            spec=spec,
            op=result.request.op,
            s=result.request.s,
            backend=self.backend,
            duration_us=duration_us,
            error=type(result.error).__name__ if result.error is not None else None,
        )
        if result.error is not None:
            # A captured failure ships its own diagnostic context: every
            # retained record for this trace (including the one above).
            _attach_flight(result.error, result.trace_id)

    # -- process backend -----------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context is not None
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _merge_envelope(self, rebuilds: int, delta: Optional[dict]) -> None:
        """Fold one worker envelope's accounting into the parent registry.

        Called exactly once per successfully returned chunk (phase 1) or
        retry (phase 2) — crash-safe by construction: a worker that died
        never returned an envelope, so nothing it half-did is merged,
        and the retried execution merges its own fresh delta once.
        """
        if rebuilds:
            _REBUILDS.add(rebuilds)
        if delta is not None:
            _HARVESTS.inc()
            obs.merge(delta)

    def _dispatch_process(
        self,
        key: bytes,
        token: Tuple[Any, ...],
        jobs: List[Tuple[QueryRequest, Optional[int]]],
        spec: str = "?",
    ) -> List[QueryResult]:
        """Chunked fan-out with crash recovery and metric harvest.

        Phase 1 submits order-preserving chunks to the persistent pool
        (the token rides along once per chunk; workers cache the built
        sampler, so residency costs one build per worker). With metrics
        enabled, each chunk's envelope also carries a registry delta of
        everything the worker recorded executing it
        (:mod:`repro.obs.harvest`), merged here exactly once per resolved
        future. If a worker dies the pool breaks and every unfinished
        chunk fails; phase 2 then retries each unresolved request
        individually on a fresh pool, so one crashing request cannot
        poison its batchmates — the crasher alone ends up with a
        :class:`~repro.errors.WorkerCrashedError` envelope.
        """
        from repro.engine.worker import execute_chunk

        enabled = obs.ENABLED
        results: List[Optional[QueryResult]] = [None] * len(jobs)
        if jobs:
            chunk_size = max(1, math.ceil(len(jobs) / (self.max_workers * 4)))
            pool = self._ensure_pool()
            submitted = []
            broke = False
            for start in range(0, len(jobs), chunk_size):
                chunk = jobs[start:start + chunk_size]
                try:
                    future = pool.submit(
                        execute_chunk, key, token, chunk, harvest=enabled
                    )
                except BrokenExecutor:
                    broke = True
                    break
                if enabled:
                    # The token pickles to `key`, and rides along once per
                    # chunk — this is the structure-serialization cost the
                    # shm tokens keep O(1) in n.
                    _SERIALIZED.add(len(key))
                submitted.append((start, chunk, future))
            for start, chunk, future in submitted:
                try:
                    rebuilds, chunk_results, delta = future.result()
                except BrokenExecutor:
                    broke = True
                    continue
                if enabled:
                    self._merge_envelope(rebuilds, delta)
                results[start:start + len(chunk)] = chunk_results
            if broke:
                self._discard_pool()
            # Phase 2: settle every request the broken pool left behind.
            for index, (request, seed) in enumerate(jobs):
                if results[index] is not None:
                    continue
                pool = self._ensure_pool()
                try:
                    if enabled:
                        _SERIALIZED.add(len(key))
                    rebuilds, (single,), delta = pool.submit(
                        execute_chunk, key, token, [(request, seed)],
                        harvest=enabled,
                    ).result()
                    if enabled:
                        self._merge_envelope(rebuilds, delta)
                except BrokenExecutor as exc:
                    self._discard_pool()
                    single = QueryResult(
                        request=request,
                        values=None,
                        seed=seed,
                        trace_id=request.trace_id,
                        error=WorkerCrashedError(
                            f"process-backend worker died executing request "
                            f"{index} (op {request.op!r}): {exc!r}"
                        ),
                    )
                    if enabled:
                        # The worker's own record died with it — log the
                        # crash envelope parent-side so the flight
                        # recorder still explains the failure.
                        obs.RECORDER.record(
                            trace=request.trace_id,
                            spec=spec,
                            op=request.op,
                            s=request.s,
                            backend=self.backend,
                            duration_us=0.0,
                            error=type(single.error).__name__,
                        )
                results[index] = single
        out: List[QueryResult] = []
        for result in results:
            assert result is not None
            if result.error is not None:
                if self._errors == "raise":
                    raise result.error
                if enabled:
                    _ERRORS.inc()
                    _attach_flight(result.error, result.trace_id)
            elif enabled:
                _REQUEST_US.observe((result.elapsed_s or 0.0) * 1e6)
            out.append(result)
        return out
