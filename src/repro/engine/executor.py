"""Batched query execution with per-request RNG streams and backends.

:class:`SamplingEngine` turns a batch of
:class:`~repro.engine.protocol.QueryRequest` into an order-preserving
list of :class:`~repro.engine.protocol.QueryResult`:

* **Independence by seed-spawning.** Request ``i`` without an explicit
  seed runs on ``derive_seed(engine_seed, i)`` (stateless SplitMix64
  spawning in :mod:`repro.substrates.rng`), so every request draws from
  its own stream, the whole batch is a pure function of the engine seed,
  and the serial and thread backends produce identical results for
  thread-safe samplers. Construct with ``seed=None`` to instead let
  requests consume the sampler's own instance stream serially (the
  classic single-stream behaviour).
* **Pluggable backends.** ``"serial"`` executes in submission order;
  ``"thread"`` fans out over a :class:`~concurrent.futures.ThreadPoolExecutor`
  — profitable when queries spend their time in NumPy batch kernels
  (which drop the GIL) and the sampler declares ``engine_thread_safe``
  (the §3.2/§4 range structures do; their
  :class:`~repro.core.plan_cache.QueryPlanCache` is lock-protected).
  Samplers without per-call rng support are executed under the protocol's
  swap lock, which keeps the thread backend correct but serialized.
* **Error capture.** Per-request failures (empty interval, bad ``s``)
  are caught into ``result.error`` instead of poisoning the batch;
  ``errors="raise"`` restores fail-fast behaviour.
* **Observability.** ``engine.batches`` / ``engine.requests`` /
  ``engine.request_errors`` counters and the ``engine.run`` span feed
  :mod:`repro.obs` when metrics are enabled.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.protocol import QueryRequest, QueryResult, Sampler
from repro.engine.registry import build
from repro.substrates.rng import DEFAULT_SEED, derive_seed, ensure_rng

__all__ = ["BACKENDS", "SamplingEngine"]

#: Supported executor backends.
BACKENDS = ("serial", "thread")

_BATCHES = obs.counter("engine.batches", "SamplingEngine.run invocations")
_REQUESTS = obs.counter("engine.requests", "Requests executed by the engine")
_ERRORS = obs.counter(
    "engine.request_errors", "Requests whose execution raised (captured)"
)


class SamplingEngine:
    """Executor for batches of sampling requests over protocol samplers.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"thread"``.
    max_workers:
        Thread-pool width (thread backend only); defaults to
        ``min(8, cpu_count)``.
    seed:
        Engine master seed for per-request stream spawning. ``None``
        keeps the default policy seed (:data:`repro.substrates.rng.DEFAULT_SEED`);
        pass ``seed=False`` to disable spawning entirely and let every
        request consume the sampler's instance stream (forces serial
        execution semantics per sampler).
    errors:
        ``"capture"`` (default) stores per-request exceptions on the
        result; ``"raise"`` propagates the first failure.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        seed: Any = None,
        errors: str = "capture",
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if errors not in ("capture", "raise"):
            raise ValueError(f"errors must be 'capture' or 'raise', got {errors!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.backend = backend
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        if seed is False:
            self._seed: Optional[int] = None
        elif seed is None:
            self._seed = DEFAULT_SEED
        elif isinstance(seed, int):
            self._seed = seed
        else:
            raise TypeError(f"seed must be an int, None, or False, got {seed!r}")
        self._errors = errors

    @property
    def seed(self) -> Optional[int]:
        """The engine master seed (``None`` = instance-stream mode)."""
        return self._seed

    def seeds_for(self, requests: Sequence[QueryRequest]) -> List[Optional[int]]:
        """The effective per-request seed of each request in a batch."""
        return [
            request.seed
            if request.seed is not None
            else (None if self._seed is None else derive_seed(self._seed, index))
            for index, request in enumerate(requests)
        ]

    # ------------------------------------------------------------------

    def run(
        self, sampler: Sampler, requests: Iterable[QueryRequest]
    ) -> List[QueryResult]:
        """Execute ``requests`` against ``sampler``; results keep order."""
        batch = list(requests)
        enabled = obs.ENABLED
        if enabled:
            _BATCHES.inc()
            _REQUESTS.add(len(batch))
        seeds = self.seeds_for(batch)
        if enabled:
            with obs.span(
                "engine.run",
                backend=self.backend,
                requests=len(batch),
                sampler=type(sampler).__name__,
            ):
                return self._dispatch(sampler, batch, seeds)
        return self._dispatch(sampler, batch, seeds)

    def run_spec(
        self, spec: str, params: dict, requests: Iterable[QueryRequest]
    ) -> Tuple[Sampler, List[QueryResult]]:
        """Build ``spec`` through the registry, run the batch, return both."""
        sampler = build(spec, **params)
        return sampler, self.run(sampler, requests)

    # ------------------------------------------------------------------

    def _dispatch(
        self,
        sampler: Sampler,
        batch: List[QueryRequest],
        seeds: List[Optional[int]],
    ) -> List[QueryResult]:
        jobs = list(zip(batch, seeds))
        if self.backend == "thread" and len(jobs) > 1 and self.max_workers > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(
                    pool.map(lambda job: self._execute_one(sampler, *job), jobs)
                )
        return [self._execute_one(sampler, request, seed) for request, seed in jobs]

    def _execute_one(
        self, sampler: Sampler, request: QueryRequest, seed: Optional[int]
    ) -> QueryResult:
        try:
            result = sampler.execute(
                request, rng=None if seed is None else ensure_rng(seed)
            )
            result.seed = seed
            return result
        except Exception as exc:
            if self._errors == "raise":
                raise
            if obs.ENABLED:
                _ERRORS.inc()
            return QueryResult(request=request, values=None, seed=seed, error=exc)
