"""The uniform sampler protocol: typed requests, results, and dispatch.

The paper's structures answer differently-shaped queries — ``(x, y, s)``
intervals, subtree ids, set groups, near-neighbor balls — but a serving
system needs one entry point per sampler. :class:`QueryRequest` carries
the structure-specific arguments as an opaque ``args`` tuple plus the
common parts (operation name, sample count ``s``, optional per-request
seed); :class:`EngineSampler` is the mixin that turns a declarative op
table (:data:`EngineSampler.engine_ops`) into the uniform
``execute(request)`` entry the :class:`~repro.engine.executor.SamplingEngine`
drives batches through.

Request validation is centralised here (one ``ValueError``/``TypeError``
contract for every structure): a non-int ``s`` is a :class:`TypeError`,
``s < 1`` is a :class:`ValueError`, and an inverted interval raises
:class:`~repro.errors.EmptyQueryError` — itself a :class:`ValueError` —
exactly as the native ``sample(x, y, s)`` paths do.

RNG override semantics: structures whose hot paths accept a per-call
``rng`` (the §3.2/§4 range samplers) declare ``pass_rng=True`` ops and
can execute concurrently, each request on its own stream. All other
structures execute a seeded request under a re-seed of their *instance*
generator (:func:`repro.substrates.rng.temporary_seed`) behind a global
lock — correct, still deterministic per (state, seed), but serialized.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.errors import EmptyQueryError
from repro.substrates.rng import ensure_rng

__all__ = [
    "EngineOp",
    "EngineSampler",
    "PlacementPlan",
    "QueryRequest",
    "QueryResult",
    "Sampler",
    "ShardTask",
]


@dataclass(frozen=True)
class QueryRequest:
    """One sampling query, structure-agnostic.

    Parameters
    ----------
    op:
        Operation name, resolved against the sampler's op table
        (``"sample"`` everywhere; range structures add
        ``"sample_indices"`` and ``"sample_wor"``, coverage samplers add
        ``"sample_indices"``, ...).
    args:
        The structure-specific query arguments, e.g. ``(x, y)`` for a
        range sampler, ``(query_point,)`` for fair-NN, ``(group,)`` for
        set-union. Empty for whole-set samplers.
    s:
        Number of independent samples to draw (``>= 1``).
    seed:
        Optional per-request seed. ``None`` means: inside an engine
        batch, a seed spawned from the engine seed; standalone, the
        sampler's own instance stream.
    tag:
        Opaque caller correlation value, echoed on the result.
    trace_id:
        Correlation ID for observability. ``None`` (the default) lets
        the engine assign a deterministic one derived from the batch
        seed stream (:func:`repro.obs.trace_id_for` — a stateless hash,
        so sample streams stay byte-identical); set it explicitly to
        thread an upstream trace through. Echoed on the result and
        attached to every span and flight-recorder entry the request
        produces, across all backends.
    """

    op: str = "sample"
    args: Tuple[Any, ...] = ()
    s: int = 1
    seed: Optional[int] = None
    tag: Any = None
    trace_id: Optional[str] = None

    def validate(self) -> "QueryRequest":
        """Check the request's common fields; return it for chaining.

        Mirrors :func:`repro.validation.validate_sample_size` so the
        protocol path and the native ``sample(...)`` paths raise
        identically shaped errors.
        """
        if not isinstance(self.op, str) or not self.op:
            raise ValueError(f"request op must be a non-empty string, got {self.op!r}")
        if not isinstance(self.s, int) or isinstance(self.s, bool):
            raise TypeError(f"sample size must be an int, got {type(self.s)!r}")
        if self.s < 1:
            raise ValueError(f"sample size must be >= 1, got {self.s}")
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise TypeError(f"request seed must be an int or None, got {type(self.seed)!r}")
        if not isinstance(self.args, tuple):
            raise TypeError(f"request args must be a tuple, got {type(self.args)!r}")
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise TypeError(
                f"request trace_id must be a str or None, got {type(self.trace_id)!r}"
            )
        return self


@dataclass
class QueryResult:
    """The outcome of one :class:`QueryRequest`.

    ``values`` holds the samples on success and ``None`` on failure;
    ``error`` holds the captured exception when the executing engine ran
    with error capture (standalone ``execute`` raises instead). ``seed``
    records the effective per-request seed (``None`` when the request
    consumed the sampler's instance stream).
    """

    request: QueryRequest
    values: Optional[List[Any]] = None
    seed: Optional[int] = None
    elapsed_s: float = 0.0
    error: Optional[Exception] = None
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> List[Any]:
        """The sampled values, re-raising the captured error if any."""
        if self.error is not None:
            raise self.error
        return self.values if self.values is not None else []


class ShardTask(NamedTuple):
    """One shard's slice of a placement-planned request (§4.1).

    ``shard`` identifies the contiguous key-space piece, ``lo``/``hi``
    are the query span translated into the shard's *local* sorted-index
    coordinates, ``quota`` is that shard's multinomially assigned share
    of the request budget ``s``, and ``seed`` is the shard's stateless
    draw stream (``derive_seed(base, 1 + shard)``) — everything an
    execution backend needs to run the sub-draw anywhere: inline, on a
    thread, or in a resident worker process. Plain ints throughout, so a
    task pickles in O(1) bytes regardless of structure size.
    """

    shard: int
    lo: int
    hi: int
    quota: int
    seed: int


@dataclass(frozen=True)
class PlacementPlan:
    """The placement layer's decomposition of one sampling request.

    Produced by :func:`repro.engine.placement.plan_fan_out` from the
    active-shard table and the request's 64-bit stateless ``base``:
    the multinomial budget split runs on ``derive_seed(base, 0)`` and
    each task carries its own derived shard seed, so the plan — and
    therefore the merged output — is a pure function of
    ``(structure, request seed, K)`` no matter which execution backend
    runs the tasks or in which order they finish.

    ``plans`` optionally aligns a per-task shard-local
    :class:`~repro.core.planner.QueryPlan` (or ``None``) with ``tasks``:
    the parent plans each shard's cover once and ships it, so executing
    a task never recomputes the cover — inline and thread runners pass
    the plan object straight to the shard's ``execute_plan``, the
    process runner ships its :meth:`~repro.core.planner.QueryPlan.portable`
    form. Empty means "no shard plans" (non-planful shard structures);
    execution falls back to the shards' own ``sample_span``.
    """

    base: int
    tasks: Tuple[ShardTask, ...]
    plans: Tuple[Any, ...] = ()

    @property
    def shards(self) -> Tuple[int, ...]:
        """The shard ids this plan touches (quota > 0 only)."""
        return tuple(task.shard for task in self.tasks)


class EngineOp(NamedTuple):
    """One entry of a sampler's op table.

    ``method`` names the bound method implementing the op. Its call shape
    is ``method(*request.args, request.s)`` when ``takes_s`` (the common
    case), else ``method(*request.args)``. ``pass_rng`` marks methods
    accepting a keyword-only ``rng`` override — those run per-request
    streams without touching shared generator state and are safe under
    the engine's thread backend.
    """

    method: str
    takes_s: bool = True
    pass_rng: bool = False


@runtime_checkable
class Sampler(Protocol):
    """Structural protocol every engine-registered structure satisfies.

    ``build`` constructs from keyword params (the registry calls it);
    ``sample`` / ``sample_many`` are the family's native draw entry
    points (signatures vary by problem — the uniform, request-shaped
    entry is :meth:`execute`); ``describe`` reports identity and
    capabilities.
    """

    def sample(self, *args: Any, **kwargs: Any) -> Any: ...

    def sample_many(self, *args: Any, **kwargs: Any) -> Any: ...

    def describe(self) -> Dict[str, Any]: ...

    def execute(self, request: QueryRequest, *, rng: Any = None) -> QueryResult: ...


# One lock for every state-swap execution in the process: swap-based
# samplers mutate their shared generator in place, so two concurrent
# seeded requests on *any* pair of them must not interleave. Samplers
# with pass_rng ops never take it.
_SWAP_LOCK = threading.RLock()


class EngineSampler:
    """Mixin implementing the engine protocol over a declarative op table.

    Subclasses set :data:`engine_ops` (op name → :class:`EngineOp`) and
    optionally :data:`engine_spec` (their registry key, stamped at
    registration time) and :data:`engine_thread_safe` (``True`` when every
    op is ``pass_rng`` and the structure's caches tolerate concurrent
    readers, letting the engine's thread backend run requests on it in
    parallel).
    """

    __slots__ = ()  # keep slotted subclasses (e.g. AliasSampler) slotted

    #: Registry key, filled in by :class:`~repro.engine.registry.SamplerRegistry`.
    engine_spec: ClassVar[Optional[str]] = None
    #: Op name -> EngineOp. Subclasses must override.
    engine_ops: ClassVar[Mapping[str, EngineOp]] = {}
    #: Whether concurrent execute() calls with distinct rngs are safe.
    engine_thread_safe: ClassVar[bool] = False

    @classmethod
    def build(cls, **params: Any) -> "EngineSampler":
        """Construct from keyword parameters (the registry factory hook).

        The default forwards to the constructor; structures needing
        composite setup (e.g. the EM sampler's machine) override this.
        """
        return cls(**params)

    def sample_many(self, *args: Any, **kwargs: Any) -> Any:
        """Default bulk-draw entry.

        Structures whose native ``sample`` already takes the count ``s``
        (the range/coverage families) inherit this alias; structures with
        a distinct one-draw ``sample()`` (alias, dynamic, set-union,
        fair-NN) override it with their native bulk method.
        """
        return self.sample(*args, **kwargs)

    def describe(self) -> Dict[str, Any]:
        """Identity, capabilities, and size — the ``engine list`` row."""
        try:
            size: Optional[int] = len(self)  # type: ignore[arg-type]
        except TypeError:
            size = None
        return {
            "spec": self.engine_spec,
            "type": type(self).__name__,
            "ops": sorted(self.engine_ops),
            "size": size,
            "thread_safe": self.engine_thread_safe,
        }

    def validate_request(self, request: QueryRequest) -> None:
        """Common request validation; subclasses extend (never replace)."""
        request.validate()
        if request.op not in self.engine_ops:
            raise ValueError(
                f"{type(self).__name__} does not support op {request.op!r}; "
                f"available: {sorted(self.engine_ops)}"
            )

    def execute(self, request: QueryRequest, *, rng: Any = None) -> QueryResult:
        """Run one request and return a timed :class:`QueryResult`.

        ``rng`` overrides the stream for this request (seed, ``Random``,
        or ``None``); when ``None``, ``request.seed`` is consulted, and
        failing that the sampler's instance stream is consumed. Errors
        propagate — batch-level capture is the engine's job.
        """
        self.validate_request(request)
        seed = request.seed
        if rng is None and seed is not None:
            rng = ensure_rng(seed)
        started = time.perf_counter()
        values = self._execute_op(request, rng)
        elapsed = time.perf_counter() - started
        return QueryResult(
            request=request,
            values=values,
            seed=seed,
            elapsed_s=elapsed,
            trace_id=request.trace_id,
        )

    def execute_many(
        self, requests: Iterable[QueryRequest], *, rng: Any = None
    ) -> List[QueryResult]:
        """Serially execute a batch of requests (one shared override rng)."""
        return [self.execute(request, rng=rng) for request in requests]

    # ------------------------------------------------------------------

    def _execute_op(self, request: QueryRequest, rng: Any) -> List[Any]:
        op = self.engine_ops[request.op]
        method = getattr(self, op.method)
        call_args = (*request.args, request.s) if op.takes_s else request.args
        if rng is None:
            return method(*call_args)
        rng = ensure_rng(rng)
        if op.pass_rng:
            return method(*call_args, rng=rng)
        # No per-call rng hook: re-seed the instance's shared generator
        # for the duration of the call. Correct for every alias of the
        # generator object (see substrates.rng.temporary_seed) but
        # mutually exclusive across threads, hence the global lock.
        from repro.substrates.rng import temporary_seed

        instance_rng = getattr(self, "_rng", None)
        if instance_rng is None:
            raise TypeError(
                f"{type(self).__name__} has no RNG stream to override for a "
                f"seeded request (op {request.op!r})"
            )
        with _SWAP_LOCK:
            with temporary_seed(instance_rng, rng.getrandbits(64)):
                return method(*call_args)


class RangeQueryMixin(EngineSampler):
    """Engine plumbing shared by every interval sampler (P3 and kin).

    Adds the interval sanity check to request validation so an inverted
    ``[x, y]`` fails identically across TreeWalk, Lemma-2, Theorem-3, the
    integer/dynamic/EM variants, and the naive baselines — the same
    :class:`~repro.errors.EmptyQueryError` (a :class:`ValueError`) the
    native paths raise.
    """

    __slots__ = ()

    engine_ops: ClassVar[Mapping[str, EngineOp]] = {
        "sample": EngineOp("sample", takes_s=True, pass_rng=True),
        "sample_indices": EngineOp("sample_indices", takes_s=True, pass_rng=True),
        "sample_wor": EngineOp(
            "sample_without_replacement", takes_s=True, pass_rng=True
        ),
    }
    engine_thread_safe: ClassVar[bool] = True

    def validate_request(self, request: QueryRequest) -> None:
        super().validate_request(request)
        if len(request.args) != 2:
            raise ValueError(
                f"range request args must be (x, y), got {request.args!r}"
            )
        x, y = request.args
        if x > y:
            raise EmptyQueryError(f"invalid query interval: x={x!r} > y={y!r}")
