"""The execution layer: *who runs a placement plan's shard tasks*.

The placement layer (:mod:`repro.engine.placement`) decides how a
request decomposes — for the sharded placement, into
:class:`~repro.engine.protocol.ShardTask` sub-draws that each carry
their own derived seed. This module owns the orthogonal decision of
where those tasks execute:

* :class:`SerialShardRunner` — inline, in the calling thread. The
  baseline every other runner must match byte-for-byte.
* :class:`ThreadShardRunner` — the sharded view's own thread pool; the
  legacy ``"shard"`` backend semantics, profitable when shard draws
  spend their time in GIL-dropping numpy kernels.
* :class:`ProcessShardRunner` — the composed ``sharded × process``
  backend. Each shard is exported **once** (shared memory when the
  structure has an exporter, raw-array rebuild token otherwise) and
  becomes resident in **exactly one** worker process; per-request
  traffic is then a handful of ints per shard (``lo, hi, quota, seed``)
  — O(log n) pickled bytes — and the draws run GIL-free across cores.

Because every task already carries its stateless seed, all three
runners produce byte-identical partials; the runner choice changes only
where the CPU time is spent. Runners are owned by the sharded view they
are bound to (:meth:`~repro.engine.shard.ShardedSampler.bind_runner`),
which the engine's placement owns in turn — ``engine.close()`` tears
the whole stack down deterministically.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, List, Optional, Tuple

from repro import obs
from repro.engine.protocol import PlacementPlan
from repro.errors import WorkerCrashedError

__all__ = [
    "ProcessShardRunner",
    "SerialShardRunner",
    "ShardRunner",
    "ThreadShardRunner",
    "make_shard_runner",
]

_SERIALIZED = obs.counter(
    "engine.serialized_bytes",
    "Build-token bytes pickled to process-backend workers (per chunk)",
)

Partials = List[Tuple[int, List[int]]]


class ShardRunner:
    """Executes a :class:`PlacementPlan`'s tasks against a sharded view."""

    name: str = "?"

    def run_plan(self, sharded: Any, plan: PlacementPlan) -> Partials:
        """``(shard, local_indices)`` partials for every task in the plan."""
        raise NotImplementedError

    def close(self) -> None:
        """Release runner-owned resources (idempotent)."""


class SerialShardRunner(ShardRunner):
    """Run every shard task inline, in plan order."""

    name = "serial"

    def run_plan(self, sharded: Any, plan: PlacementPlan) -> Partials:
        from repro.engine.shard import run_shard_task

        plans = plan.plans or (None,) * len(plan.tasks)
        return [
            run_shard_task(sharded.shards, task, sub)
            for task, sub in zip(plan.tasks, plans)
        ]


class ThreadShardRunner(ShardRunner):
    """Fan shard tasks out over the sharded view's own thread pool.

    Delegates to the view's built-in threaded path — the same pool, the
    same single-task fast path — so ``placement="sharded",
    backend="thread"`` is *the same code* as the legacy ``"shard"``
    backend, not merely equivalent to it. The pool itself belongs to the
    view (its :meth:`close` handles shutdown), so this runner holds no
    resources.
    """

    name = "thread"

    def run_plan(self, sharded: Any, plan: PlacementPlan) -> Partials:
        return sharded._run_plan_threaded(plan)


class ProcessShardRunner(ShardRunner):
    """Shard-resident worker processes: one shard, one worker, no GIL.

    Lazily builds up to ``min(K, engine.max_workers)`` single-worker
    pools; shard ``j`` always routes to pool ``j % npools``, so a shard
    is rebuilt (or shm-attached) by exactly one resident process no
    matter how many requests run. Tokens prefer the zero-copy shared
    memory path (:meth:`SamplingEngine.share`) and fall back to a raw
    ``("shard", ...)`` array token for structures without an exporter.

    A dying worker breaks only its own pool: that pool is recycled and
    the in-flight request gets a :class:`~repro.errors.WorkerCrashedError`
    (captured into its envelope by the engine) while other shards'
    residents — and other requests — keep running.
    """

    name = "process"

    def __init__(self, engine: Any, sharded: Any):
        self._engine = engine
        self._sharded = sharded
        self._npools = max(1, min(len(sharded.shards), engine.max_workers))
        self._pools: List[Optional[ProcessPoolExecutor]] = [None] * self._npools
        self._tokens: List[Optional[Tuple[bytes, Tuple[Any, ...]]]] = [
            None
        ] * len(sharded.shards)

    # -- resident plumbing ---------------------------------------------

    def _token_for(self, shard: int) -> Tuple[bytes, Tuple[Any, ...]]:
        memo = self._tokens[shard]
        if memo is None:
            from repro.engine.shm import ShmShareError

            structure = self._sharded.shards[shard]
            try:
                token = self._engine.share(structure)
            except ShmShareError:
                cls = type(structure)
                token = (
                    "shard",
                    f"{cls.__module__}:{cls.__qualname__}",
                    tuple(structure.keys),
                    tuple(structure.weights),
                )
            memo = (pickle.dumps(token), token)
            self._tokens[shard] = memo
        return memo

    def _pool_for(self, shard: int) -> Tuple[int, ProcessPoolExecutor]:
        slot = shard % self._npools
        pool = self._pools[slot]
        if pool is None:
            context = (
                multiprocessing.get_context(self._engine._mp_context)
                if self._engine._mp_context is not None
                else None
            )
            pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
            self._pools[slot] = pool
        return slot, pool

    def _recycle(self, slot: int) -> None:
        pool, self._pools[slot] = self._pools[slot], None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- execution ------------------------------------------------------

    def run_plan(self, sharded: Any, plan: PlacementPlan) -> Partials:
        from repro.engine.worker import execute_shard_chunk

        enabled = obs.ENABLED
        trace = obs.current_trace() if enabled else None
        pending: List[Tuple[Any, int, Any]] = []
        crash: Optional[WorkerCrashedError] = None
        failure: Optional[Exception] = None
        plans = plan.plans or (None,) * len(plan.tasks)
        for task, sub in zip(plan.tasks, plans):
            key, token = self._token_for(task.shard)
            slot, pool = self._pool_for(task.shard)
            # Ship the parent's shard-local plan as portable data (kind,
            # key, cover hint) — O(log n) ints — so the resident worker
            # skips the cover search and executes the very same plan.
            portable = (
                sub.portable()
                if sub is not None and getattr(sub, "hint", None) is not None
                else None
            )
            draw = [
                (
                    task.shard,
                    task.lo,
                    task.hi,
                    task.quota,
                    task.seed,
                    trace,
                    portable,
                )
            ]
            try:
                future = pool.submit(
                    execute_shard_chunk,
                    key,
                    token,
                    draw,
                    harvest=enabled,
                )
            except BrokenExecutor:
                self._recycle(slot)
                crash = crash or WorkerCrashedError(
                    f"shard-resident worker for shard {task.shard} died; "
                    f"its pool was recycled"
                )
                continue
            if enabled:
                # The per-task pickling cost: the token bytes ride along
                # (cached worker-side after the first build), the task
                # itself is five ints — O(log n) per request via shm.
                _SERIALIZED.add(len(key))
            pending.append((task, slot, future))
        partials: Partials = []
        for task, slot, future in pending:
            try:
                rebuilds, outcomes, delta = future.result()
            except BrokenExecutor:
                self._recycle(slot)
                crash = crash or WorkerCrashedError(
                    f"shard-resident worker for shard {task.shard} died "
                    f"mid-draw; its pool was recycled"
                )
                continue
            if enabled:
                self._engine._merge_envelope(rebuilds, delta)
            status, payload = outcomes[0]
            if status == "err":
                failure = failure or payload
                continue
            partials.append((task.shard, payload))
        # Every future is drained before any raise: sibling shards'
        # residents stay warm and their envelopes are merged even when
        # one shard fails.
        if crash is not None:
            raise crash
        if failure is not None:
            raise failure
        return partials

    def close(self) -> None:
        pools, self._pools = self._pools, [None] * self._npools
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        self._tokens = [None] * len(self._tokens)


def make_shard_runner(engine: Any, sharded: Any) -> Optional[ShardRunner]:
    """The runner matching ``engine.execution`` for a sharded view.

    Returns ``None`` for thread execution *when the view's own pool
    geometry already matches* — binding nothing keeps the view on its
    built-in threaded path (byte-identical either way; this just avoids
    an indirection on the legacy alias).
    """
    execution = engine.execution
    if execution == "serial":
        return SerialShardRunner()
    if execution == "process":
        return ProcessShardRunner(engine, sharded)
    return ThreadShardRunner()
