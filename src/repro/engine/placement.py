"""The placement layer: *where a request's draws live* (§4.1, lifted).

The engine used to conflate two orthogonal decisions in one backend
string: **placement** (does a request run against the whole structure,
or split multinomially over contiguous key-space shards?) and
**execution** (do sub-tasks run inline, on threads, or in worker
processes?). This module owns the first axis:

* :class:`LocalPlacement` — the identity placement: one structure, the
  execution backend runs whole requests.
* :class:`ShardedPlacement` — the paper's §4.1 decomposition: the key
  space is cut into ``K`` contiguous shards, each request's budget ``s``
  is split multinomially by in-span shard weight, and every shard draws
  on its own stateless stream. Any execution backend
  (``serial | thread | process``) can run the per-shard sub-draws —
  that composition is the shard-per-process backend.

The §4.1 primitives (:func:`split_budget`, :func:`shard_seed`,
:func:`merge_indices`) live here as pure functions, lifted out of
:class:`~repro.engine.shard.ShardedSampler` so the determinism contract
— merged output is a pure function of ``(structure, request seed, K)``
regardless of worker count or scheduling — is enforced at the placement
layer, once, for every execution backend. ``merge_indices`` dispatches
through the ``scalar → numpy → jit`` kernel ladder
(:func:`repro.core.kernels.offset_concat_batch`).

Legacy backend strings remain valid through :func:`normalize_backend`:
``"shard"`` is an alias for ``placement="sharded", backend="thread"``
and produces byte-identical streams (it is the same code path).
"""

from __future__ import annotations

import time
from difflib import get_close_matches
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.protocol import PlacementPlan, ShardTask
from repro.substrates.rng import derive_seed, ensure_rng

__all__ = [
    "DEFAULT_SHARDS",
    "PLACEMENTS",
    "LocalPlacement",
    "Placement",
    "ShardedPlacement",
    "merge_indices",
    "normalize_backend",
    "plan_fan_out",
    "shard_seed",
    "split_budget",
]

#: Supported placements (the first axis of the backend matrix).
PLACEMENTS = ("local", "sharded")

#: Execution backends runnable under a placement (the second axis).
EXECUTIONS = ("serial", "thread", "process")

#: Default shard count for the sharded placement when none is given.
DEFAULT_SHARDS = 4

#: Legacy single-string backends -> (placement, execution). ``"shard"``
#: historically meant "sharded placement fanned out over threads".
_BACKEND_ALIASES = {"shard": ("sharded", "thread")}

_PLACEMENT_SHARDS = obs.counter(
    "engine.placement_shards",
    "Shard sub-tasks dispatched by the sharded placement layer",
)
_MERGE_US = obs.histogram(
    "engine.shard_merge_us",
    "Microseconds spent merging per-shard results into one batch",
)


def normalize_backend(
    backend: str, placement: Optional[str] = None
) -> Tuple[str, str]:
    """Resolve ``(backend, placement)`` into ``(placement, execution)``.

    ``placement=None`` keeps backward compatibility: plain backends map
    to the local placement and the legacy ``"shard"`` string aliases to
    ``("sharded", "thread")``. An explicit placement composes with any
    of ``serial | thread | process`` (``"shard"`` is rejected there —
    it *is* a placement, not an execution backend).
    """
    legacy = tuple(EXECUTIONS) + ("shard",)
    if placement is None:
        if backend in _BACKEND_ALIASES:
            return _BACKEND_ALIASES[backend]
        if backend in EXECUTIONS:
            return "local", backend
        close = get_close_matches(str(backend), legacy, n=3)
        hint = (
            f" (did you mean {', '.join(repr(c) for c in close)}?)"
            if close
            else ""
        )
        raise ValueError(
            f"unknown backend {backend!r}{hint}; choose from {legacy}"
        )
    if placement not in PLACEMENTS:
        close = get_close_matches(str(placement), PLACEMENTS, n=3)
        hint = (
            f" (did you mean {', '.join(repr(c) for c in close)}?)"
            if close
            else ""
        )
        raise ValueError(
            f"unknown placement {placement!r}{hint}; choose from {PLACEMENTS}"
        )
    if backend in _BACKEND_ALIASES:
        alias_placement, execution = _BACKEND_ALIASES[backend]
        if placement != alias_placement:
            raise ValueError(
                f"backend {backend!r} is the legacy alias for "
                f"placement='sharded'; it cannot run under "
                f"placement={placement!r} — pick an execution backend "
                f"from {EXECUTIONS}"
            )
        return alias_placement, execution
    if backend not in EXECUTIONS:
        raise ValueError(
            f"unknown execution backend {backend!r} under "
            f"placement={placement!r}; choose from {EXECUTIONS}"
        )
    return placement, backend


# ----------------------------------------------------------------------
# the §4.1 primitives, as pure functions of the request's stateless base
# ----------------------------------------------------------------------


def split_budget(weights: Sequence[float], s: int, base: int) -> List[int]:
    """Multinomially split ``s`` draws over parts weighted by ``weights``.

    Runs on ``derive_seed(base, 0)`` — the split consumes its own
    dedicated stream so shard draws (``derive_seed(base, 1 + j)``) are
    untouched by how many parts the split saw.
    """
    from repro.core.schemes import multinomial_split

    return multinomial_split(list(weights), s, rng=ensure_rng(derive_seed(base, 0)))


def shard_seed(base: int, shard: int) -> int:
    """Shard ``shard``'s stateless draw seed for a request with ``base``."""
    return derive_seed(base, 1 + shard)


def plan_fan_out(
    active: Sequence[Tuple[int, int, int, float]],
    s: int,
    base: int,
    sub_plans: Optional[Sequence[Any]] = None,
) -> PlacementPlan:
    """The §4.1 plan for one request over its active-shard table.

    ``active`` rows are ``(shard, local_lo, local_hi, weight)``. A single
    active shard takes the whole budget without consuming the split
    stream (matching the pre-refactor fast path bit-for-bit); otherwise
    the budget splits multinomially by weight and zero-quota shards are
    dropped. Every task carries its derived shard seed, so the plan is
    executable by any backend without further randomness decisions.

    ``sub_plans`` optionally aligns one shard-local
    :class:`~repro.core.planner.QueryPlan` (or ``None``) with each
    ``active`` row — the parent's plan-once-ship-everywhere payload.
    Entries for dropped zero-quota shards are dropped with their tasks,
    keeping ``plan.plans`` aligned with ``plan.tasks``.
    """
    if len(active) == 1:
        j, lo, hi, _ = active[0]
        tasks: Tuple[ShardTask, ...] = (
            ShardTask(j, lo, hi, s, shard_seed(base, j)),
        )
        plans: Tuple[Any, ...] = (
            (sub_plans[0],) if sub_plans is not None else ()
        )
    else:
        counts = split_budget([row[3] for row in active], s, base)
        kept = [
            (index, ShardTask(j, lo, hi, quota, shard_seed(base, j)))
            for index, ((j, lo, hi, _), quota) in enumerate(zip(active, counts))
            if quota > 0
        ]
        tasks = tuple(task for _, task in kept)
        plans = (
            tuple(sub_plans[index] for index, _ in kept)
            if sub_plans is not None
            else ()
        )
    if obs.ENABLED:
        _PLACEMENT_SHARDS.add(len(tasks))
    return PlacementPlan(base=base, tasks=tasks, plans=plans)


def merge_indices(
    partials: Sequence[Tuple[int, Sequence[int]]], bounds: Sequence[int]
) -> List[int]:
    """Offset shard-local indices to global ones, in shard order.

    The order-preserving merge of §4.1: partials are sorted by shard id
    (deterministic regardless of which worker finished first) and each
    shard's local indices are shifted by its global base offset.
    Dispatches through the kernel ladder — the scalar extend loop below
    the batch cutoff, :func:`repro.core.kernels.offset_concat_batch`
    (numpy, or the compiled tier for large merges) above it.
    """
    from repro.core import kernels

    enabled = obs.ENABLED
    started = time.perf_counter() if enabled else 0.0
    ordered = sorted(partials, key=lambda pair: pair[0])
    total = sum(len(local) for _, local in ordered)
    if kernels.use_batch(total):
        merged = kernels.offset_concat_batch(
            [local for _, local in ordered],
            [bounds[j] for j, _ in ordered],
        )
    else:
        merged = []
        for j, local in ordered:
            offset = bounds[j]
            merged.extend(offset + index for index in local)
    if enabled:
        _MERGE_US.observe((time.perf_counter() - started) * 1e6)
    return merged


# ----------------------------------------------------------------------
# placement objects (engine-owned, deterministic lifecycle)
# ----------------------------------------------------------------------


class Placement:
    """Where a request's draws run. Owned — and closed — by the engine."""

    name: str = "?"

    def view(self, sampler: Any, engine: Any) -> Any:
        """The sampler (or a placed view of it) requests execute against."""
        raise NotImplementedError

    def close(self) -> None:
        """Release every resource this placement created (idempotent)."""


class LocalPlacement(Placement):
    """Identity placement: requests run against the structure as-is."""

    name = "local"

    def view(self, sampler: Any, engine: Any) -> Any:
        return sampler


class ShardedPlacement(Placement):
    """§4.1 key-space sharding with engine-owned view lifecycle.

    Views (one :class:`~repro.engine.shard.ShardedSampler` per distinct
    ``(sampler, shards, execution geometry)``) are cached *here*, not on
    the wrapped sampler instance — so ``engine.close()`` can shut down
    every shard runner (thread pools, resident worker processes)
    deterministically, and a sampler shared across engines cannot leak
    another engine's pools.
    """

    name = "sharded"

    def __init__(self, shards: int = DEFAULT_SHARDS):
        self.shards = shards
        # id(sampler) -> (sampler, view); the strong sampler ref pins
        # the id for the cache's lifetime.
        self._views: Dict[int, Tuple[Any, Any]] = {}

    def view(self, sampler: Any, engine: Any) -> Any:
        from repro.engine.execution import make_shard_runner
        from repro.engine.shard import ShardedSampler

        if isinstance(sampler, ShardedSampler):
            # Pre-sharded by the caller: respect its geometry and runner.
            return sampler
        memo = self._views.get(id(sampler))
        if memo is not None:
            return memo[1]
        view = ShardedSampler.from_sampler(
            sampler, self.shards, max_workers=engine.max_workers
        )
        view.bind_runner(make_shard_runner(engine, view))
        self._views[id(sampler)] = (sampler, view)
        return view

    def close(self) -> None:
        views, self._views = self._views, {}
        for _, view in views.values():
            view.close()


def make_placement(placement: str, shards: int = DEFAULT_SHARDS) -> Placement:
    """Placement instance for a normalized placement name."""
    if placement == "sharded":
        return ShardedPlacement(shards)
    return LocalPlacement()
