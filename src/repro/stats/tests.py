"""Goodness-of-fit checks for sampler output distributions.

Every sampler in this package is validated by drawing many samples under a
fixed seed and chi-square-testing the empirical frequencies against the
target (uniform or weight-proportional) distribution. Implemented with a
plain chi-square tail computed via the regularised incomplete gamma
function, so the library itself has no hard scipy dependency (tests may
still cross-check against scipy).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple


def empirical_counts(samples: Iterable[Hashable]) -> Dict[Hashable, int]:
    """Frequency table of a sample stream."""
    return dict(Counter(samples))


def _chi_square_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution.

    ``P[X ≥ statistic]`` for ``X ~ χ²(dof)``, via the upper regularised
    incomplete gamma function Q(dof/2, statistic/2) computed with the
    standard series/continued-fraction split (Numerical Recipes style).
    """
    if statistic <= 0:
        return 1.0
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    a = dof / 2.0
    x = statistic / 2.0
    if x < a + 1.0:
        # Lower series: P(a, x), return 1 - P.
        term = 1.0 / a
        total = term
        denominator = a
        for _ in range(1000):
            denominator += 1.0
            term *= x / denominator
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        lower = total * math.exp(-x + a * math.log(x) - math.lgamma(a))
        return max(0.0, min(1.0, 1.0 - lower))
    # Continued fraction for Q(a, x) (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    upper = h * math.exp(-x + a * math.log(x) - math.lgamma(a))
    return max(0.0, min(1.0, upper))


def chi_square_pvalue(
    observed: Sequence[float], expected: Sequence[float]
) -> float:
    """p-value of Pearson's chi-square test with given expected counts."""
    if len(observed) != len(expected):
        raise ValueError("observed and expected must have equal length")
    if len(observed) < 2:
        return 1.0
    statistic = 0.0
    for obs, exp in zip(observed, expected):
        if exp <= 0:
            raise ValueError("expected counts must be positive")
        statistic += (obs - exp) ** 2 / exp
    return _chi_square_sf(statistic, len(observed) - 1)


def chi_square_uniform_pvalue(samples: Sequence[Hashable], support: Sequence[Hashable]) -> float:
    """Test that ``samples`` are uniform over ``support``."""
    counts = Counter(samples)
    total = len(samples)
    expected = total / len(support)
    observed = [counts.get(item, 0) for item in support]
    return chi_square_pvalue(observed, [expected] * len(support))


def chi_square_weighted_pvalue(
    samples: Sequence[Hashable],
    weights: Mapping[Hashable, float],
) -> float:
    """Test that ``samples`` follow the weight-proportional distribution."""
    counts = Counter(samples)
    total_weight = sum(weights.values())
    total = len(samples)
    observed = []
    expected = []
    for item, weight in weights.items():
        observed.append(counts.get(item, 0))
        expected.append(total * weight / total_weight)
    return chi_square_pvalue(observed, expected)


def merge_small_bins(
    observed: Sequence[float], expected: Sequence[float], minimum: float = 5.0
) -> Tuple[list, list]:
    """Pool bins with expected count < ``minimum`` (chi-square validity)."""
    pooled_obs: list = []
    pooled_exp: list = []
    bucket_obs = 0.0
    bucket_exp = 0.0
    for obs, exp in zip(observed, expected):
        if exp < minimum:
            bucket_obs += obs
            bucket_exp += exp
            if bucket_exp >= minimum:
                pooled_obs.append(bucket_obs)
                pooled_exp.append(bucket_exp)
                bucket_obs = bucket_exp = 0.0
        else:
            pooled_obs.append(obs)
            pooled_exp.append(exp)
    if bucket_exp > 0:
        if pooled_exp:
            pooled_obs[-1] += bucket_obs
            pooled_exp[-1] += bucket_exp
        else:
            pooled_obs.append(bucket_obs)
            pooled_exp.append(bucket_exp)
    return pooled_obs, pooled_exp
