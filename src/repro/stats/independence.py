"""Cross-query independence diagnostics (the defining IQS property, eq. 1).

Two practical detectors:

* :func:`repeat_query_distinct_fraction` — repeat the *same* query many
  times with ``s = 1``; an IQS sampler keeps producing fresh draws (the
  distinct fraction approaches the birthday-process expectation), while the
  §2 dependent baseline returns the identical element every time.
* :func:`lag_independence_pvalue` — chi-square independence test on the
  contingency table of consecutive outputs ``(X_t, X_{t+1})``; under IQS
  the pairs are independent, under the dependent baseline they are
  perfectly correlated (p-value ≈ 0).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, List, Sequence

from repro.stats.tests import _chi_square_sf


def repeat_query_outputs(draw: Callable[[], Hashable], repetitions: int) -> List[Hashable]:
    """Issue the same single-sample query ``repetitions`` times."""
    return [draw() for _ in range(repetitions)]


def repeat_query_distinct_fraction(
    draw: Callable[[], Hashable], repetitions: int
) -> float:
    """Fraction of distinct outputs across repeated identical queries.

    ≈ ``(1 - (1 - 1/k)^m)·k/m``-ish for IQS over a result of size ``k``;
    exactly ``1/m`` for the dependent baseline (all outputs identical).
    """
    outputs = repeat_query_outputs(draw, repetitions)
    return len(set(outputs)) / len(outputs)


def lag_independence_pvalue(outputs: Sequence[Hashable]) -> float:
    """Chi-square test of independence between ``X_t`` and ``X_{t+1}``.

    Builds the lag-1 contingency table and compares against the product of
    the marginals. Small p-values reject independence. Requires at least
    two distinct output values to be informative; returns 1.0 otherwise
    (a constant sequence is handled by the distinct-fraction detector).
    """
    if len(outputs) < 3:
        return 1.0
    pairs = list(zip(outputs[:-1], outputs[1:]))
    row_values = sorted(set(first for first, _ in pairs), key=repr)
    col_values = sorted(set(second for _, second in pairs), key=repr)
    if len(row_values) < 2 or len(col_values) < 2:
        return 1.0
    table = Counter(pairs)
    total = len(pairs)
    row_totals = Counter(first for first, _ in pairs)
    col_totals = Counter(second for _, second in pairs)
    statistic = 0.0
    for row in row_values:
        for col in col_values:
            expected = row_totals[row] * col_totals[col] / total
            if expected == 0:
                continue
            observed = table.get((row, col), 0)
            statistic += (observed - expected) ** 2 / expected
    dof = (len(row_values) - 1) * (len(col_values) - 1)
    return _chi_square_sf(statistic, dof)
