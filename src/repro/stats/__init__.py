"""Statistical verification helpers for the IQS guarantees.

:mod:`repro.stats.tests` checks *within-query* distributions (uniform or
weighted marginals); :mod:`repro.stats.independence` checks the defining
*cross-query* property of IQS (eq. 1 of the paper) and flags the §2
dependent baseline.
"""

from repro.stats.independence import (
    lag_independence_pvalue,
    repeat_query_distinct_fraction,
)
from repro.stats.tests import (
    chi_square_weighted_pvalue,
    chi_square_uniform_pvalue,
    empirical_counts,
)

__all__ = [
    "lag_independence_pvalue",
    "repeat_query_distinct_fraction",
    "chi_square_weighted_pvalue",
    "chi_square_uniform_pvalue",
    "empirical_counts",
]
