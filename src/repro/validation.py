"""Input validation helpers shared across the package."""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core import kernels
from repro.errors import InvalidWeightError


def validate_weights(weights: Sequence[float], *, context: str = "sampler") -> List[float]:
    """Check that every weight is positive and finite; return them as floats.

    The paper's problem statements (§1, §3.1) require *positive* weights:
    a zero-weight element can simply be dropped by the caller, and negative
    or non-finite weights make the sampling distribution undefined.

    Large numeric inputs are checked in two vectorized passes when numpy
    is available; anything numpy cannot coerce — or any input containing
    an offending weight — falls through to the scalar loop, which raises
    with the exact index and repr of the first bad entry.
    """
    n = len(weights)
    if kernels.use_batch_build(n):
        np = kernels.np
        try:
            arr = np.asarray(weights, dtype=np.float64)
        except (TypeError, ValueError):
            arr = None
        if (
            arr is not None
            and arr.ndim == 1
            and arr.size == n
            and bool(np.isfinite(arr).all())
            and bool((arr > 0.0).all())
        ):
            return arr.tolist()
    cleaned: List[float] = []
    for index, weight in enumerate(weights):
        value = float(weight)
        if math.isnan(value) or math.isinf(value):
            raise InvalidWeightError(f"{context}: weight at index {index} is {weight!r}")
        if value <= 0.0:
            raise InvalidWeightError(
                f"{context}: weight at index {index} must be positive, got {weight!r}"
            )
        cleaned.append(value)
    return cleaned


def validate_sample_size(s: int) -> int:
    """Check that a requested sample size is a positive integer."""
    if not isinstance(s, int) or isinstance(s, bool):
        raise TypeError(f"sample size must be an int, got {type(s)!r}")
    if s < 1:
        raise ValueError(f"sample size must be >= 1, got {s}")
    return s
