"""Exception hierarchy for the IQS library.

Every error raised by this package derives from :class:`IQSError` so callers
can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class IQSError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class BuildError(IQSError):
    """A structure could not be built from the given input."""


class InvalidWeightError(BuildError):
    """A sampling weight was zero, negative, NaN, or infinite."""


class EmptyQueryError(IQSError, ValueError):
    """The query predicate selects no elements, so no sample exists.

    Also a :class:`ValueError`: an inverted interval (``x > y``) or any
    other predicate selecting nothing makes the requested sample
    undefined, and every structure signals it the same way — callers can
    uniformly guard a query with ``except ValueError`` (invalid sample
    sizes raise plain :class:`ValueError` through the same check).
    """


class SampleBudgetExceededError(IQSError):
    """A rejection-sampling loop exceeded its iteration budget.

    This indicates that a probabilistic guarantee failed to hold (an event
    the paper bounds to probability ``O(1/n^2)`` or similar), or that an
    approximate-cover acceptance rate assumption was violated by the data.
    """


class ExternalMemoryError(IQSError):
    """An operation violated the simulated external-memory model."""


class WorkerCrashedError(IQSError):
    """A process-backend worker died before returning a result.

    Raised (or captured into the request's error envelope, depending on
    the engine's ``errors`` policy) when a worker process exits abnormally
    mid-batch — e.g. ``os._exit``, a segfault in an extension, or an
    OOM kill. The engine replaces its broken pool and retries the other
    requests of the batch, so only the crashing request carries this
    error.
    """
