"""``python -m repro`` — package info and pointers.

The actual entry points are ``python -m repro.experiments`` (claim
tables) and the pytest suites; this module prints a map.
"""

from __future__ import annotations

import sys

import repro
from repro.experiments.runner import ALL_EXPERIMENTS


def main() -> int:
    print(f"repro {repro.__version__} — Independent Query Sampling (Tao, PODS 2022)")
    print()
    print("Entry points:")
    print("  python -m repro.experiments [--quick] [ids]   claim tables (EXPERIMENTS.md)")
    print("  pytest tests/                                 unit/integration/property suites")
    print("  pytest benchmarks/ --benchmark-only           pytest-benchmark timings")
    print("  python examples/quickstart.py                 first steps")
    print()
    print(f"Experiments: {', '.join(ALL_EXPERIMENTS)}")
    print(f"Public API: {len(repro.__all__)} exported names (see help(repro))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
