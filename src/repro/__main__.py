"""``python -m repro`` — package info, the engine CLI, and the obs dump.

``python -m repro`` prints a map of entry points; ``python -m repro obs``
exercises a small representative workload with metrics enabled and dumps
the resulting :mod:`repro.obs` snapshot (table, JSON, or Prometheus text);
``python -m repro engine list`` prints the sampler registry and
``python -m repro engine run SPEC`` batch-executes a synthesized workload
against any registered structure through the :class:`~repro.engine.SamplingEngine`.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import obs
from repro.experiments.runner import ALL_EXPERIMENTS


def _info() -> int:
    print(f"repro {repro.__version__} — Independent Query Sampling (Tao, PODS 2022)")
    print()
    print("Entry points:")
    print("  python -m repro.experiments [--quick] [ids]   claim tables (EXPERIMENTS.md)")
    print("  python -m repro engine list                   sampler registry catalogue")
    print("  python -m repro engine run SPEC [options]     batched demo queries via the engine")
    print("  python -m repro obs [--format F] [--out PATH] metrics snapshot (OBSERVABILITY.md)")
    print("  pytest tests/                                 unit/integration/property suites")
    print("  pytest benchmarks/ --benchmark-only           pytest-benchmark timings")
    print("  python examples/quickstart.py                 first steps")
    print()
    print(f"Experiments: {', '.join(ALL_EXPERIMENTS)}")
    print(f"Public API: {len(repro.__all__)} exported names (see help(repro))")
    return 0


def _exercise_workload(n: int = 4096, s: int = 64, queries: int = 16) -> None:
    """Touch every instrumented subsystem once so the dump is non-trivial."""
    from repro import (
        AliasSampler,
        AliasAugmentedRangeSampler,
        BucketDynamicSampler,
        ChunkedRangeSampler,
        EMMachine,
        EMRangeSampler,
        FenwickDynamicSampler,
        SetUnionSampler,
        TreeWalkRangeSampler,
    )
    keys = [float(v) for v in range(n)]
    weights = [1.0 + (v % 7) for v in range(n)]

    AliasSampler(keys, weights, rng=1).sample_many(s)
    for structure in (
        TreeWalkRangeSampler(keys, weights=weights, rng=2),
        AliasAugmentedRangeSampler(keys, weights=weights, rng=3),
        ChunkedRangeSampler(keys, weights=weights, rng=4),
    ):
        for q in range(queries):
            lo = float(q * (n // (2 * queries)))
            structure.sample(lo, lo + n / 2.0, s)
        structure.sample_without_replacement(0.0, float(n), s)
    fenwick = FenwickDynamicSampler(rng=6)
    bucket = BucketDynamicSampler(rng=7)
    for v, weight in enumerate(weights[:256]):
        fenwick.insert(v, weight)
        bucket.insert(v, weight)
    fenwick.sample_many(s)
    bucket.sample_many(s)
    sets = [list(range(j * 64, (j + 1) * 64)) for j in range(16)]
    union = SetUnionSampler(sets, rng=8)
    union.sample_many(list(range(len(sets))), s)
    machine = EMMachine(block_size=16, memory_blocks=4)
    em = EMRangeSampler(machine, keys[:1024], rng=9, pool_blocks=2)
    for q in range(queries):
        em.query(float(q), float(q) + 512.0, s)


def _engine_list() -> int:
    from repro.engine import REGISTRY

    rows = [
        (entry.key, entry.problem, entry.summary) for entry in REGISTRY.specs()
    ]
    key_width = max(len(key) for key, _, _ in rows)
    problem_width = max(len(problem) for _, problem, _ in rows)
    print(f"{len(rows)} registered sampler specs (build via repro.build(spec, ...)):")
    for key, problem, summary in rows:
        print(f"  {key:<{key_width}}  {problem:<{problem_width}}  {summary}")
    return 0


def _engine_explain(engine, sampler, request, spec: str) -> int:
    """Print a request's query plan without executing any draws."""
    try:
        info = engine.explain(sampler, request)
    except NotImplementedError:
        print(
            f"error: {spec} does not participate in the plan layer "
            f"(no plan_kind)",
            file=sys.stderr,
        )
        return 2
    except TypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"spec:      {spec} ({type(sampler).__name__})")
    print(
        f"backend:   placement={engine.placement} "
        f"execution={engine.execution}"
    )
    print(f"plan:      kind={info['kind']} key={info['key']!r}")
    print(
        f"cover:     {info['cover_spans']} canonical span(s), "
        f"total weight {info['total_weight']:.6g}"
    )
    print(
        f"source:    "
        f"{'plan store (cached)' if info['cached'] else 'built cold'}"
    )
    split = info.get("budget_split")
    if split:
        print(f"fan-out:   s={request.s} over {len(split)} active shard(s)")
        for row in split:
            a, b = row["span"]
            print(
                f"  shard {row['shard']}: span=[{a}, {b})  "
                f"weight={row['weight']:.6g}  "
                f"expected quota={row['expected_quota']:.2f}"
            )
    print("draws:     none executed (--explain plans only)")
    return 0


def _engine_run(
    spec: str,
    requests: int,
    s: int,
    backend: str,
    seed: int,
    n: int,
    shards: int,
    workers: int | None,
    repeat: int = 1,
    warmup: int = 0,
    jit: bool | None = None,
    shm: bool = False,
    placement: str | None = None,
    explain: bool = False,
) -> int:
    from time import perf_counter

    from repro.core import kernels
    from repro.engine import QueryRequest, SamplingEngine, demo_build

    if repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if warmup < 0:
        print("error: --warmup must be >= 0", file=sys.stderr)
        return 2
    if jit is False:
        kernels.HAVE_JIT = False
    elif jit is True:
        if kernels._HAVE_NUMBA:
            kernels.HAVE_JIT = True
        else:
            print(
                "warning: --jit requested but numba is not installed; "
                "continuing on the numpy/scalar tiers",
                file=sys.stderr,
            )

    sampler, template = demo_build(spec, n=n)
    batch = [
        QueryRequest(op=template.op, args=template.args, s=s)
        for _ in range(requests)
    ]
    try:
        engine = SamplingEngine(
            backend=backend, placement=placement, seed=seed, shards=shards,
            max_workers=workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    composed_process = engine.placement == "sharded" and engine.execution == "process"
    if explain:
        try:
            return _engine_explain(engine, sampler, batch[0], spec)
        finally:
            engine.close()
    try:
        if composed_process:
            if shm:
                print(
                    "error: --shm is implicit under --placement sharded "
                    "--backend process (each shard is exported once and "
                    "attached by its resident worker)",
                    file=sys.stderr,
                )
                return 2
            # The composed shard-per-process backend: the engine shards
            # the structure, exports each shard into shared memory (or a
            # raw-array token) once, and ships O(log n) sub-draw tasks.
            run_once = lambda: engine.run(sampler, batch)  # noqa: E731
        elif backend == "process":
            if shm:
                # Export the structure's arrays into shared memory: the
                # token carries only segment names, workers mmap-attach.
                token = engine.share(sampler)
            else:
                # Workers rebuild the same deterministic demo structure
                # from the ("demo", spec, n) token and keep it resident.
                token = ("demo", spec, n)
            run_once = lambda: engine.run_token(token, batch)  # noqa: E731
        elif shm:
            print(
                "error: --shm requires --backend process (shared-memory "
                "tokens only matter across process boundaries)",
                file=sys.stderr,
            )
            return 2
        else:
            run_once = lambda: engine.run(sampler, batch)  # noqa: E731
        # Warmup batches absorb one-time costs — worker residency builds,
        # shm attaches, and (on the jit tier) numba compilation — so the
        # timed repeats measure steady-state throughput.
        for _ in range(warmup):
            run_once()
        wall_times = []
        for _ in range(repeat):
            start = perf_counter()
            results = run_once()
            wall_times.append(perf_counter() - start)
    except TypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()
    failures = [r for r in results if not r.ok]
    described = sampler.describe()
    print(f"spec:     {spec} ({described.get('class', type(sampler).__name__)})")
    extra = f"  shards: {shards}" if engine.placement == "sharded" else ""
    if backend == "process" and not composed_process:
        extra += f"  shm: {'on' if shm else 'off'}"
    print(
        f"backend:  {backend} (placement={engine.placement}, "
        f"execution={engine.execution})  seed: {seed}  "
        f"requests: {requests}  s: {s}{extra}"
    )
    print(
        f"kernels:  jit={'on' if kernels.HAVE_JIT else 'off'}  "
        f"numpy={'on' if kernels.HAVE_NUMPY else 'off'}"
    )
    elapsed = sum(r.elapsed_s or 0.0 for r in results)
    print(f"executed: {len(results)} requests in {elapsed:.4f}s sampler time")
    if warmup or repeat > 1:
        print(
            f"timing:   warmup={warmup} repeat={repeat}  "
            f"best={min(wall_times):.4f}s  "
            f"mean={sum(wall_times) / len(wall_times):.4f}s wall per batch"
        )
    for index, result in enumerate(results[:3]):
        print(f"  [{index}] seed={result.seed} values={result.values!r}")
    if len(results) > 3:
        print(f"  ... {len(results) - 3} more")
    if failures:
        for result in failures:
            print(f"  FAILED {result.request}: {result.error!r}")
        return 1
    return 0


def _exercise_engine_workload(n: int = 512, requests: int = 8, s: int = 4) -> None:
    """Batch the demo structure through two backends so the flight
    recorder holds a cross-process request log (parent- and worker-side
    entries under shared trace IDs)."""
    from repro.engine import QueryRequest, SamplingEngine, demo_build

    sampler, template = demo_build("range.chunked", n=n)

    def batch():
        return [
            QueryRequest(op=template.op, args=template.args, s=s)
            for _ in range(requests)
        ]

    SamplingEngine(backend="serial", seed=42).run(sampler, batch())
    with SamplingEngine(backend="process", seed=42, max_workers=2) as engine:
        engine.run_token(("demo", "range.chunked", n), batch())


def _format_table(snapshot: dict) -> str:
    lines = ["counters:"]
    for name, value in snapshot["counters"].items():
        lines.append(f"  {name:<40} {value}")
    if snapshot["gauges"]:
        lines.append("gauges:")
        for name, value in snapshot["gauges"].items():
            lines.append(f"  {name:<40} {value}")
    if snapshot["histograms"]:
        lines.append("histograms:")
        for name, data in snapshot["histograms"].items():
            lines.append(
                f"  {name:<40} count={data['count']} mean={data['mean']:.3g} "
                f"p50={data['p50']:.3g} p90={data['p90']:.3g} "
                f"p99={data['p99']:.3g}"
            )
    lines.append("derived:")
    for name, value in snapshot["derived"].items():
        rendered = "n/a" if value is None else f"{value:.4g}"
        lines.append(f"  {name:<40} {rendered}")
    return "\n".join(lines)


def _format_records(records: list) -> str:
    if not records:
        return "flight recorder is empty"
    lines = [
        f"{len(records)} flight-recorder records (oldest first):",
        f"  {'trace':<16}  {'backend':<7}  {'worker':<6}  "
        f"{'op':<14}  {'s':>4}  {'us':>9}  error",
    ]
    for r in records:
        lines.append(
            f"  {str(r['trace']):<16}  {r['backend']:<7}  {r['worker']:<6}  "
            f"{r['op']:<14}  {r['s']:>4}  {r['us']:>9.1f}  "
            f"{r['error'] or '-'}  [{r['spec']}]"
        )
    return "\n".join(lines)


def _obs_dump(fmt: str, out: str | None, no_workload: bool) -> int:
    was_enabled = obs.ENABLED
    obs.enable()
    try:
        if not no_workload:
            obs.reset()
            _exercise_workload()
            _exercise_engine_workload()
        snapshot = obs.snapshot(include_spans=(fmt == "json"))
    finally:
        if not was_enabled:
            obs.disable()
    if fmt == "json":
        text = obs.to_json(snapshot)
    elif fmt == "prometheus":
        text = obs.to_prometheus(snapshot)
    else:
        text = _format_table(snapshot)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {fmt} snapshot to {out}")
    else:
        print(text)
    return 0


def _obs_tail(fmt: str, out: str | None, no_workload: bool, limit: int) -> int:
    """Dump the flight recorder's most recent request records."""
    import json as json_mod

    was_enabled = obs.ENABLED
    obs.enable()
    try:
        if not no_workload:
            obs.reset()
            _exercise_engine_workload()
        records = obs.tail(limit)
    finally:
        if not was_enabled:
            obs.disable()
    text = (
        json_mod.dumps(records, indent=2, sort_keys=True)
        if fmt == "json"
        else _format_records(records)
    )
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {len(records)} records to {out}")
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__.splitlines()[0]
    )
    subparsers = parser.add_subparsers(dest="command")
    engine_parser = subparsers.add_parser(
        "engine", help="inspect the sampler registry / run batched demo queries"
    )
    engine_sub = engine_parser.add_subparsers(dest="engine_command", required=True)
    engine_sub.add_parser("list", help="print every registered sampler spec")
    run_parser = engine_sub.add_parser(
        "run", help="build SPEC on a demo dataset and batch-execute queries"
    )
    run_parser.add_argument("spec", help="registry key, e.g. range.chunked")
    run_parser.add_argument(
        "--requests", type=int, default=8, help="batch size (default: 8)"
    )
    run_parser.add_argument(
        "--s", type=int, default=4, help="samples per request (default: 4)"
    )
    run_parser.add_argument(
        "--backend", choices=("serial", "thread", "process", "shard"),
        default="serial",
    )
    run_parser.add_argument(
        "--placement", choices=("local", "sharded"), default=None,
        help="placement layer: local (default) runs requests whole; "
             "sharded splits each budget over key-space shards — "
             "composed with --backend process this is the "
             "shard-per-process backend",
    )
    run_parser.add_argument(
        "--seed", type=int, default=42, help="engine master seed (default: 42)"
    )
    run_parser.add_argument(
        "--n", type=int, default=64, help="demo structure size (default: 64)"
    )
    run_parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --backend shard (default: 4)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="pool width for thread/process/shard backends "
             "(default: min(8, cpu_count))",
    )
    run_parser.add_argument(
        "--repeat", type=int, default=1,
        help="timed executions of the batch (default: 1)",
    )
    run_parser.add_argument(
        "--warmup", type=int, default=0,
        help="untimed batch executions first — excludes numba compilation, "
             "worker residency builds, and shm attaches from the timings "
             "(default: 0)",
    )
    run_parser.add_argument(
        "--jit", action=argparse.BooleanOptionalAction, default=None,
        help="force the compiled kernel tier on (--jit) or off (--no-jit); "
             "default: auto (on when numba is installed)",
    )
    run_parser.add_argument(
        "--shm", action="store_true",
        help="with --backend process: export the structure to shared "
             "memory so workers mmap-attach instead of rebuilding",
    )
    run_parser.add_argument(
        "--explain", action="store_true",
        help="print the query plan (canonical cover, cache state, and — "
             "under --placement sharded — the expected budget split per "
             "shard) without executing any draws",
    )
    obs_parser = subparsers.add_parser(
        "obs", help="run a representative workload and dump the metrics snapshot"
    )
    obs_parser.add_argument(
        "action",
        nargs="?",
        choices=("dump", "tail"),
        default="dump",
        help="dump: full metrics snapshot (default); tail: the flight "
             "recorder's recent request records",
    )
    obs_parser.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="output format (default: table; tail supports table and json)",
    )
    obs_parser.add_argument(
        "--out", metavar="PATH", default=None, help="write to a file instead of stdout"
    )
    obs_parser.add_argument(
        "--no-workload",
        action="store_true",
        help="dump current process counters without running the exercise workload",
    )
    obs_parser.add_argument(
        "-n", "--limit", type=int, default=32,
        help="with tail: number of records to show, newest kept (default: 32)",
    )
    args = parser.parse_args(argv)
    if args.command == "engine":
        if args.engine_command == "list":
            return _engine_list()
        return _engine_run(
            args.spec, args.requests, args.s, args.backend, args.seed, args.n,
            args.shards, args.workers, repeat=args.repeat, warmup=args.warmup,
            jit=args.jit, shm=args.shm, placement=args.placement,
            explain=args.explain,
        )
    if args.command == "obs":
        if args.action == "tail":
            if args.format == "prometheus":
                parser.error("obs tail supports --format table or json")
            return _obs_tail(args.format, args.out, args.no_workload, args.limit)
        return _obs_dump(args.format, args.out, args.no_workload)
    return _info()


if __name__ == "__main__":
    sys.exit(main())
