"""``python -m repro`` — package info, pointers, and the obs dump.

``python -m repro`` prints a map of entry points; ``python -m repro obs``
exercises a small representative workload with metrics enabled and dumps
the resulting :mod:`repro.obs` snapshot (table, JSON, or Prometheus text).
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro import obs
from repro.experiments.runner import ALL_EXPERIMENTS


def _info() -> int:
    print(f"repro {repro.__version__} — Independent Query Sampling (Tao, PODS 2022)")
    print()
    print("Entry points:")
    print("  python -m repro.experiments [--quick] [ids]   claim tables (EXPERIMENTS.md)")
    print("  python -m repro obs [--format F] [--out PATH] metrics snapshot (OBSERVABILITY.md)")
    print("  pytest tests/                                 unit/integration/property suites")
    print("  pytest benchmarks/ --benchmark-only           pytest-benchmark timings")
    print("  python examples/quickstart.py                 first steps")
    print()
    print(f"Experiments: {', '.join(ALL_EXPERIMENTS)}")
    print(f"Public API: {len(repro.__all__)} exported names (see help(repro))")
    return 0


def _exercise_workload(n: int = 4096, s: int = 64, queries: int = 16) -> None:
    """Touch every instrumented subsystem once so the dump is non-trivial."""
    from repro import (
        AliasSampler,
        AliasAugmentedRangeSampler,
        BucketDynamicSampler,
        ChunkedRangeSampler,
        EMMachine,
        EMRangeSampler,
        FenwickDynamicSampler,
        SetUnionSampler,
        TreeWalkRangeSampler,
    )
    keys = [float(v) for v in range(n)]
    weights = [1.0 + (v % 7) for v in range(n)]

    AliasSampler(keys, weights, rng=1).sample_many(s)
    for structure in (
        TreeWalkRangeSampler(keys, weights=weights, rng=2),
        AliasAugmentedRangeSampler(keys, weights=weights, rng=3),
        ChunkedRangeSampler(keys, weights=weights, rng=4),
    ):
        for q in range(queries):
            lo = float(q * (n // (2 * queries)))
            structure.sample(lo, lo + n / 2.0, s)
        structure.sample_without_replacement(0.0, float(n), s)
    fenwick = FenwickDynamicSampler(rng=6)
    bucket = BucketDynamicSampler(rng=7)
    for v, weight in enumerate(weights[:256]):
        fenwick.insert(v, weight)
        bucket.insert(v, weight)
    fenwick.sample_many(s)
    bucket.sample_many(s)
    sets = [list(range(j * 64, (j + 1) * 64)) for j in range(16)]
    union = SetUnionSampler(sets, rng=8)
    union.sample_many(list(range(len(sets))), s)
    machine = EMMachine(block_size=16, memory_blocks=4)
    em = EMRangeSampler(machine, keys[:1024], rng=9, pool_blocks=2)
    for q in range(queries):
        em.query(float(q), float(q) + 512.0, s)


def _format_table(snapshot: dict) -> str:
    lines = ["counters:"]
    for name, value in snapshot["counters"].items():
        lines.append(f"  {name:<40} {value}")
    if snapshot["gauges"]:
        lines.append("gauges:")
        for name, value in snapshot["gauges"].items():
            lines.append(f"  {name:<40} {value}")
    if snapshot["histograms"]:
        lines.append("histograms:")
        for name, data in snapshot["histograms"].items():
            lines.append(
                f"  {name:<40} count={data['count']} mean={data['mean']:.3g}"
            )
    lines.append("derived:")
    for name, value in snapshot["derived"].items():
        rendered = "n/a" if value is None else f"{value:.4g}"
        lines.append(f"  {name:<40} {rendered}")
    return "\n".join(lines)


def _obs_dump(fmt: str, out: str | None, no_workload: bool) -> int:
    was_enabled = obs.ENABLED
    obs.enable()
    try:
        if not no_workload:
            obs.reset()
            _exercise_workload()
        snapshot = obs.snapshot(include_spans=(fmt == "json"))
    finally:
        if not was_enabled:
            obs.disable()
    if fmt == "json":
        text = obs.to_json(snapshot)
    elif fmt == "prometheus":
        text = obs.to_prometheus(snapshot)
    else:
        text = _format_table(snapshot)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {fmt} snapshot to {out}")
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__.splitlines()[0]
    )
    subparsers = parser.add_subparsers(dest="command")
    obs_parser = subparsers.add_parser(
        "obs", help="run a representative workload and dump the metrics snapshot"
    )
    obs_parser.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="output format (default: table)",
    )
    obs_parser.add_argument(
        "--out", metavar="PATH", default=None, help="write to a file instead of stdout"
    )
    obs_parser.add_argument(
        "--no-workload",
        action="store_true",
        help="dump current process counters without running the exercise workload",
    )
    args = parser.parse_args(argv)
    if args.command == "obs":
        return _obs_dump(args.format, args.out, args.no_workload)
    return _info()


if __name__ == "__main__":
    sys.exit(main())
