"""De-amortized EM set sampling (paper §8, final remark).

The plain sample-pool structure answers most queries in ``⌈s/B⌉`` I/Os but
occasionally stalls for a full ``O((n/B)·log_{M/B}(n/B))``-I/O rebuild.
§8 notes that standard de-amortization [5] turns the amortised bound into
a worst-case one. This module implements that: two pools — an *active*
pool being consumed and a *spare* pool being rebuilt **incrementally** —
where every query advances the spare's rebuild pipeline by an amount of
work proportional to the samples it consumed. When the active pool drains,
the spare is (made) complete, the two swap, and a fresh incremental
rebuild begins.

The rebuild pipeline is the same sort-based recipe as
:class:`~repro.em.sample_pool.SamplePoolSetSampler`, re-expressed as a
generator with a yield point after every block-granular step, so progress
can be metered in O(1)-I/O units.
"""

from __future__ import annotations

import heapq
from typing import Generator, List, Optional, Sequence

from repro.em.array import ExternalArray, ExternalWriter
from repro.em.model import EMMachine
from repro.em.sample_pool import _EMSetEngineMixin
from repro.errors import BuildError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size


def _stepwise_sort(
    machine: EMMachine, array: ExternalArray
) -> Generator[None, None, ExternalArray]:
    """External merge sort that yields after each block-granular step."""
    run_length = machine.M
    runs: List[ExternalArray] = []
    n = len(array)
    start = 0
    while start < n:
        stop = min(start + run_length, n)
        chunk = array.read_range(start, stop)
        chunk.sort()
        writer = ExternalWriter(machine)
        for value in chunk:
            writer.append(value)
        runs.append(writer.finish())
        start = stop
        yield  # one run formed: O(M/B) I/Os of work
    array.free()

    fan_in = max(2, machine.memory_blocks - 1)
    while len(runs) > 1:
        next_round: List[ExternalArray] = []
        for group_start in range(0, len(runs), fan_in):
            group = runs[group_start : group_start + fan_in]
            if len(group) == 1:
                next_round.append(group[0])
                continue
            positions = [0] * len(group)
            heap = []
            for reader, run in enumerate(group):
                if len(run) > 0:
                    heap.append((run.get(0), reader))
                    positions[reader] = 1
            heapq.heapify(heap)
            writer = ExternalWriter(machine)
            emitted = 0
            while heap:
                value, reader = heapq.heappop(heap)
                writer.append(value)
                emitted += 1
                run = group[reader]
                if positions[reader] < len(run):
                    heapq.heappush(heap, (run.get(positions[reader]), reader))
                    positions[reader] += 1
                if emitted % machine.block_size == 0:
                    yield  # ~one output block of work
            merged = writer.finish()
            for run in group:
                run.free()
            next_round.append(merged)
            yield
        runs = next_round
    result = runs[0] if runs else ExternalArray(machine, 0)
    return result


class DeamortizedSamplePoolSetSampler(_EMSetEngineMixin):
    """§8 set sampling with worst-case (not just amortised) query I/O.

    Invariant: after a fraction ``f`` of the active pool has been
    consumed, at least a fraction ``f`` of the spare pool's rebuild
    pipeline has executed — so the swap never has more than one query's
    worth of catch-up to finish.
    """

    def __init__(
        self,
        machine: EMMachine,
        items: Sequence,
        rng: RNGLike = None,
        pool_size: Optional[int] = None,
        pace_factor: float = 1.25,
    ):
        if len(items) == 0:
            raise BuildError("cannot sample from an empty set")
        if pace_factor <= 1.0:
            raise BuildError("pace_factor must exceed 1 (spare must finish in time)")
        self.machine = machine
        self._rng = ensure_rng(rng)
        self._data = ExternalArray.from_list(machine, items)
        self._pool_size = pool_size if pool_size is not None else len(items)
        self._pace_factor = pace_factor
        self.rebuild_count = 0
        self.max_query_ios = 0

        # Bootstrap: build the first active pool eagerly and record the
        # pipeline's step count so future rebuilds can be paced.
        generator = self._rebuild_generator()
        steps = 0
        while True:
            try:
                next(generator)
                steps += 1
            except StopIteration as stop:
                self._active: ExternalArray = stop.value
                break
        self._steps_per_rebuild = max(1, steps)
        self._cursor = 0
        self._spare_generator = self._rebuild_generator()
        self._spare_steps_done = 0
        self._spare_result: Optional[ExternalArray] = None

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------

    def _rebuild_generator(self) -> Generator[None, None, ExternalArray]:
        """The pool pipeline of §8, one yield per block-granular step."""
        self.rebuild_count += 1
        rng = self._rng
        n = len(self._data)

        writer = ExternalWriter(self.machine)
        for slot in range(self._pool_size):
            writer.append((int(rng.random() * n) % n, slot))
            if (slot + 1) % self.machine.block_size == 0:
                yield
        pairs = writer.finish()

        by_index = yield from _stepwise_sort(self.machine, pairs)

        valued_writer = ExternalWriter(self.machine)
        data_iter = enumerate(self._data.scan())
        current_index, current_value = next(data_iter)
        emitted = 0
        for index, slot in by_index.scan():
            while current_index < index:
                current_index, current_value = next(data_iter)
            valued_writer.append((slot, current_value))
            emitted += 1
            if emitted % self.machine.block_size == 0:
                yield
        by_index.free()
        valued = valued_writer.finish()

        by_slot = yield from _stepwise_sort(self.machine, valued)

        pool_writer = ExternalWriter(self.machine)
        emitted = 0
        for _, value in by_slot.scan():
            pool_writer.append(value)
            emitted += 1
            if emitted % self.machine.block_size == 0:
                yield
        by_slot.free()
        return pool_writer.finish()

    def _advance_spare(self, steps: int) -> None:
        for _ in range(steps):
            if self._spare_result is not None:
                return
            try:
                next(self._spare_generator)
                self._spare_steps_done += 1
            except StopIteration as stop:
                self._spare_result = stop.value
                return

    def _finish_spare_and_swap(self) -> None:
        while self._spare_result is None:
            self._advance_spare(1_000_000)
        self._active.free()
        self._active = self._spare_result
        self._cursor = 0
        self._spare_result = None
        self._spare_generator = self._rebuild_generator()
        self._spare_steps_done = 0

    # ------------------------------------------------------------------

    def query(self, s: int) -> List:
        """``s`` WR samples with worst-case-bounded I/O.

        Cost per query: ``⌈s/B⌉`` sequential pool reads plus at most
        ``pace_factor · steps_per_rebuild · (s / pool_size) + O(1)``
        incremental rebuild steps, each O(1) I/Os — no rebuild spikes.
        """
        validate_sample_size(s)
        start_ios = self.machine.stats.total
        result: List = []
        while len(result) < s:
            available = self._pool_size - self._cursor
            if available == 0:
                self._finish_spare_and_swap()
                available = self._pool_size
            take = min(s - len(result), available)
            result.extend(self._active.read_range(self._cursor, self._cursor + take))
            self._cursor += take
            # Pace the spare: stay at least `pace_factor × consumed
            # fraction` through the pipeline.
            target = int(
                self._pace_factor
                * self._steps_per_rebuild
                * (self._cursor / self._pool_size)
            ) + 1
            if self._spare_steps_done < target:
                self._advance_spare(target - self._spare_steps_done)
        self.max_query_ios = max(
            self.max_query_ios, self.machine.stats.total - start_ios
        )
        return result
