"""Static B-tree over the simulated disk (paper §8).

The B-tree is EM's answer to the BST: fanout ``Θ(B)``, height
``O(log_B n)``, and a range query decomposes into ``O(log_B n)`` canonical
subtrees after reading only the ``O(log_B n)`` blocks on the two boundary
root-to-leaf paths. :class:`~repro.em.em_range_sampler.EMRangeSampler`
hangs per-subtree sample pools off these canonical units.

Node layout: one block per internal node holding child entries
``(min_key, max_key, ref, lo, hi, weight)`` where ``ref`` is
``("leaf", i)`` or ``("node", block_id)``, ``[lo, hi)`` is the subtree's
element-index span, and ``weight`` aggregates the subtree's element
weights (defaulting to the count for unweighted trees). The sorted
elements live in an :class:`ExternalArray` whose ``i``-th block is leaf
``i``; a parallel weight array exists when weights are supplied.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.em.array import ExternalArray
from repro.em.model import EMMachine
from repro.errors import BuildError
from repro.validation import validate_weights

Ref = Tuple[str, int]
Entry = Tuple[float, float, Ref, int, int, float]
CanonicalUnit = Tuple[Ref, int, int]  # (ref, lo, hi)
WeightedUnit = Tuple[Ref, int, int, float]  # + aggregated weight


class StaticBTree:
    """Bulk-loaded B-tree over sorted values with canonical decomposition."""

    def __init__(
        self,
        machine: EMMachine,
        values: Sequence[float],
        fanout: int = 0,
        weights: Optional[Sequence[float]] = None,
    ):
        if len(values) == 0:
            raise BuildError("StaticBTree requires at least one value")
        for i in range(1, len(values)):
            if not values[i - 1] < values[i]:
                raise BuildError("StaticBTree values must be strictly increasing")
        if weights is not None:
            if len(weights) != len(values):
                raise BuildError(
                    f"got {len(values)} values but {len(weights)} weights"
                )
            weights = validate_weights(weights, context="StaticBTree")
        self.machine = machine
        # Internal fanout: each entry needs ~6 words in its block.
        self.fanout = fanout if fanout > 0 else max(2, machine.block_size // 6)
        self.data = ExternalArray.from_list(machine, values)
        self.weights_data: Optional[ExternalArray] = (
            ExternalArray.from_list(machine, weights) if weights is not None else None
        )
        self._n = len(values)

        B = machine.block_size
        level: List[Entry] = []
        for leaf_index in range(self.data.num_blocks):
            lo = leaf_index * B
            hi = min(lo + B, self._n)
            leaf_weight = (
                float(hi - lo) if weights is None else sum(weights[lo:hi])
            )
            level.append(
                (values[lo], values[hi - 1], ("leaf", leaf_index), lo, hi, leaf_weight)
            )

        self.height = 1
        while len(level) > 1:
            next_level: List[Entry] = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                (block_id,) = machine.allocate_blocks(1)
                machine.write_block(block_id, list(group))
                next_level.append(
                    (
                        group[0][0],
                        group[-1][1],
                        ("node", block_id),
                        group[0][3],
                        group[-1][4],
                        sum(entry[5] for entry in group),
                    )
                )
            level = next_level
            self.height += 1
        self.root_entry: Entry = level[0]
        machine.flush()

    def __len__(self) -> int:
        return self._n

    @property
    def is_weighted(self) -> bool:
        return self.weights_data is not None

    # ------------------------------------------------------------------

    def span_of(self, x: float, y: float) -> Tuple[int, int]:
        """Element-index span of ``[x, y]`` — resolved during decomposition,
        exposed separately for tests (no extra I/O is charged here because
        the decomposition below derives spans from node entries)."""
        units = self.canonical_units(x, y)
        if not units:
            return 0, 0
        return units[0][1], units[-1][2]

    def canonical_units(self, x: float, y: float) -> List[CanonicalUnit]:
        """Disjoint subtrees (plus partial-leaf pieces) covering
        ``S ∩ [x, y]`` as ``(ref, lo, hi)`` tuples; see
        :meth:`canonical_units_weighted` for the weighted variant."""
        return [(ref, lo, hi) for ref, lo, hi, _ in self.canonical_units_weighted(x, y)]

    def canonical_units_weighted(self, x: float, y: float) -> List[WeightedUnit]:
        """Canonical units with aggregated weights.

        Reads only the boundary paths — ``O(log_B n)`` block I/Os, plus
        one weight-block read per partial leaf when the tree is weighted.
        Partial leaf pieces carry ``ref = ("partial", leaf_index)``.
        """
        if x > y:
            return []
        results: List[WeightedUnit] = []

        def visit(entry: Entry) -> None:
            min_key, max_key, ref, lo, hi, weight = entry
            if min_key > y or max_key < x:
                return
            if x <= min_key and max_key <= y:
                results.append((ref, lo, hi, weight))
                return
            kind, identifier = ref
            if kind == "leaf":
                # Partially covered leaf: narrow to the exact sub-span.
                block = self.machine.read_block(self.data.blocks[identifier])
                block_values = block[: hi - lo]
                inner_lo = bisect_left(block_values, x)
                inner_hi = bisect_right(block_values, y)
                if inner_lo < inner_hi:
                    piece_weight = float(inner_hi - inner_lo)
                    if self.weights_data is not None:
                        piece_weight = sum(
                            self.read_leaf_weights(identifier)[inner_lo:inner_hi]
                        )
                    results.append(
                        (("partial", identifier), lo + inner_lo, lo + inner_hi, piece_weight)
                    )
                return
            for child in self.machine.read_block(identifier):
                visit(tuple(child))

        visit(self.root_entry)
        results.sort(key=lambda unit: unit[1])
        return results

    def read_leaf_values(self, leaf_index: int) -> List[float]:
        """Values stored in one leaf block (1 read I/O on a miss)."""
        B = self.machine.block_size
        lo = leaf_index * B
        hi = min(lo + B, self._n)
        return self.machine.read_block(self.data.blocks[leaf_index])[: hi - lo]

    def read_leaf_weights(self, leaf_index: int) -> List[float]:
        """Weights of one leaf's elements (1 read I/O on a miss).

        Unweighted trees answer with unit weights at no I/O cost.
        """
        B = self.machine.block_size
        lo = leaf_index * B
        hi = min(lo + B, self._n)
        if self.weights_data is None:
            return [1.0] * (hi - lo)
        return self.machine.read_block(self.weights_data.blocks[leaf_index])[: hi - lo]

    def children_of(self, ref: Ref) -> List[Entry]:
        """Child entries of an internal node (1 read I/O on a miss)."""
        kind, identifier = ref
        if kind != "node":
            raise BuildError(f"{ref!r} is not an internal node")
        return [tuple(child) for child in self.machine.read_block(identifier)]
