"""External-memory (EM) IQS structures on a simulated disk (paper §8).

The paper's §8 moves IQS to the Aggarwal–Vitter external-memory model:
``M`` words of memory, unbounded disk formatted into ``B``-word blocks,
cost measured in block I/Os with CPU time free. We simulate that machine
exactly (:mod:`repro.em.model`) — every structure here is charged real
block transfers through an LRU memory of ``M/B`` block frames — which is
the faithful substitute for disk hardware (DESIGN.md §4).

Contents:

* :class:`~repro.em.model.EMMachine` — the simulated machine with I/O
  counters;
* :class:`~repro.em.array.ExternalArray` — a blocked array;
* :func:`~repro.em.sorting.external_merge_sort` — the
  ``O((n/B) log_{M/B}(n/B))`` sort the §8 bounds are stated in;
* :class:`~repro.em.sample_pool.SamplePoolSetSampler` — the §8
  set-sampling upper bound (pre-drawn pool, amortised rebuild), plus the
  naive random-access baseline;
* :func:`~repro.em.lower_bound.set_sampling_lower_bound` — Hu et al.'s
  ``Ω(min(s, (s/B) log_{M/B}(n/B)))`` query lower bound;
* :class:`~repro.em.em_range_sampler.EMRangeSampler` — a B-tree with
  per-node sample pools for WR range sampling in EM.
"""

from repro.em.array import ExternalArray
from repro.em.btree import StaticBTree
from repro.em.em_range_sampler import EMRangeSampler
from repro.em.lower_bound import sort_bound_ios, set_sampling_lower_bound
from repro.em.model import EMMachine, IOStats
from repro.em.sample_pool import NaiveEMSetSampler, SamplePoolSetSampler
from repro.em.sorting import external_merge_sort

__all__ = [
    "ExternalArray",
    "StaticBTree",
    "EMRangeSampler",
    "sort_bound_ios",
    "set_sampling_lower_bound",
    "EMMachine",
    "IOStats",
    "NaiveEMSetSampler",
    "SamplePoolSetSampler",
    "external_merge_sort",
]
