"""Blocked arrays on the simulated disk (paper §8).

An :class:`ExternalArray` stores a sequence of words across ``⌈n/B⌉``
blocks. Random access costs one I/O per cache miss; a full scan costs
``⌈n/B⌉`` reads — the gap that makes EM set sampling interesting (§8).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.em.model import EMMachine
from repro.errors import ExternalMemoryError


class ExternalArray:
    """Fixed-length array of words laid out in consecutive disk blocks."""

    def __init__(self, machine: EMMachine, length: int):
        if length < 0:
            raise ExternalMemoryError("array length must be non-negative")
        self.machine = machine
        self._length = length
        block_count = (length + machine.block_size - 1) // machine.block_size
        self._blocks = machine.allocate_blocks(max(block_count, 0))

    @classmethod
    def from_list(cls, machine: EMMachine, items: Sequence) -> "ExternalArray":
        """Materialise ``items`` on disk with ``⌈n/B⌉`` write I/Os."""
        array = cls(machine, len(items))
        B = machine.block_size
        for block_index, block_id in enumerate(array._blocks):
            start = block_index * B
            machine.write_block(block_id, list(items[start : start + B]))
        return array

    def __len__(self) -> int:
        return self._length

    @property
    def blocks(self) -> List[int]:
        return list(self._blocks)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def _locate(self, index: int) -> tuple:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        B = self.machine.block_size
        return self._blocks[index // B], index % B

    def get(self, index: int):
        """Random access (1 read I/O on a cache miss)."""
        block_id, offset = self._locate(index)
        return self.machine.read_block(block_id)[offset]

    def set(self, index: int, value) -> None:
        """Random write (read-modify-write through the cache)."""
        block_id, offset = self._locate(index)
        frame = list(self.machine.read_block(block_id))
        while len(frame) <= offset:
            frame.append(None)
        frame[offset] = value
        self.machine.write_block(block_id, frame)

    def read_range(self, lo: int, hi: int) -> List:
        """Sequential read of ``[lo, hi)`` — ``O((hi-lo)/B + 1)`` I/Os."""
        if lo < 0 or hi > self._length or lo > hi:
            raise IndexError(f"bad range [{lo}, {hi}) for length {self._length}")
        out: List = []
        B = self.machine.block_size
        index = lo
        while index < hi:
            block_id = self._blocks[index // B]
            frame = self.machine.read_block(block_id)
            offset = index % B
            take = min(hi - index, B - offset)
            out.extend(frame[offset : offset + take])
            index += take
        return out

    def scan(self) -> Iterator:
        """Full sequential scan (``⌈n/B⌉`` reads, streaming)."""
        B = self.machine.block_size
        remaining = self._length
        for block_id in self._blocks:
            frame = self.machine.read_block(block_id)
            take = min(remaining, B)
            for offset in range(take):
                yield frame[offset]
            remaining -= take

    def to_list(self) -> List:
        return list(self.scan())

    def free(self) -> None:
        self.machine.free_blocks(self._blocks)
        self._blocks = []
        self._length = 0


class ExternalWriter:
    """Append-only builder producing an :class:`ExternalArray`-like layout.

    Buffers one block in memory and writes it when full — the standard
    streaming-output pattern used by external sorting.
    """

    def __init__(self, machine: EMMachine):
        self.machine = machine
        self._buffer: List = []
        self._block_ids: List[int] = []
        self._length = 0

    def append(self, value) -> None:
        self._buffer.append(value)
        self._length += 1
        if len(self._buffer) == self.machine.block_size:
            self._flush_buffer()

    def extend(self, values: Iterable) -> None:
        for value in values:
            self.append(value)

    def _flush_buffer(self) -> None:
        (block_id,) = self.machine.allocate_blocks(1)
        self.machine.write_block(block_id, self._buffer)
        self._block_ids.append(block_id)
        self._buffer = []

    def finish(self) -> ExternalArray:
        """Seal the stream and return the resulting array."""
        if self._buffer:
            self._flush_buffer()
        array = ExternalArray.__new__(ExternalArray)
        array.machine = self.machine
        array._length = self._length
        array._blocks = self._block_ids
        return array
