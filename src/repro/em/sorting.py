"""External merge sort — ``O((n/B) log_{M/B}(n/B))`` I/Os (paper §8).

The §8 upper bounds are all stated in terms of the sorting bound
(Aggarwal–Vitter [4]): form memory-sized sorted runs, then merge with
fan-in ``M/B - 1`` until one run remains. The sample-pool structure uses
this sort twice per rebuild.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.em.array import ExternalArray, ExternalWriter
from repro.em.model import EMMachine


def _form_runs(
    machine: EMMachine, array: ExternalArray, key: Callable
) -> List[ExternalArray]:
    """Read M words at a time, sort in memory, write each as a run."""
    run_length = machine.M
    runs: List[ExternalArray] = []
    n = len(array)
    start = 0
    while start < n:
        stop = min(start + run_length, n)
        chunk = array.read_range(start, stop)
        chunk.sort(key=key)
        writer = ExternalWriter(machine)
        writer.extend(chunk)
        runs.append(writer.finish())
        start = stop
    return runs


class _RunReader:
    """Streams one run, one block in memory at a time."""

    def __init__(self, machine: EMMachine, run: ExternalArray):
        self._machine = machine
        self._run = run
        self._position = 0
        self._frame: List = []
        self._frame_start = 0

    def next_value(self):
        if self._position >= len(self._run):
            return None, False
        B = self._machine.block_size
        if not self._frame or self._position >= self._frame_start + len(self._frame):
            block_index = self._position // B
            self._frame = self._machine.read_block(self._run.blocks[block_index])
            self._frame_start = block_index * B
        value = self._frame[self._position - self._frame_start]
        self._position += 1
        return value, True


def _merge_runs(
    machine: EMMachine, runs: List[ExternalArray], key: Callable
) -> ExternalArray:
    readers = [_RunReader(machine, run) for run in runs]
    heap = []
    for reader_index, reader in enumerate(readers):
        value, ok = reader.next_value()
        if ok:
            heap.append((key(value), reader_index, value))
    heapq.heapify(heap)
    writer = ExternalWriter(machine)
    while heap:
        _, reader_index, value = heapq.heappop(heap)
        writer.append(value)
        next_value, ok = readers[reader_index].next_value()
        if ok:
            heapq.heappush(heap, (key(next_value), reader_index, next_value))
    merged = writer.finish()
    for run in runs:
        run.free()
    return merged


def external_merge_sort(
    machine: EMMachine,
    array: ExternalArray,
    key: Optional[Callable] = None,
    free_input: bool = False,
) -> ExternalArray:
    """Sort an external array; returns a new sorted external array.

    I/O cost: ``2·(n/B)`` per pass over ``⌈log_{M/B-1}(n/M)⌉ + 1`` passes —
    the sorting bound of [4] that §8's structures are charged against.
    """
    sort_key = key if key is not None else (lambda value: value)
    runs = _form_runs(machine, array, sort_key)
    if free_input:
        array.free()
    if not runs:
        return ExternalArray(machine, 0)
    fan_in = max(2, machine.memory_blocks - 1)
    while len(runs) > 1:
        next_round: List[ExternalArray] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            if len(group) == 1:
                next_round.append(group[0])
            else:
                next_round.append(_merge_runs(machine, group, sort_key))
        runs = next_round
    return runs[0]
