"""EM set sampling: the sample-pool structure and its naive rival (§8).

Problem (*set sampling*): ``S`` has ``n`` elements on disk; a query
returns ``s`` independent WR samples of ``S``, all queries mutually
independent.

* :class:`NaiveEMSetSampler` — the RAM algorithm run in EM: one random
  block access per sample, ``Θ(s)`` I/Os. Optimal in RAM, terrible on
  disk.
* :class:`SamplePoolSetSampler` — the matching upper bound of §8: keep a
  pre-drawn pool of ``n`` WR samples on disk; a query *sequentially*
  consumes the next ``s`` clean pool entries (``⌈s/B⌉`` I/Os) and the pool
  is rebuilt with external sorting when it runs dry, for an amortised
  ``O((s/B)·log_{M/B}(n/B))`` per query.

The pool rebuild follows the sorting recipe: generate pairs
``(random_index_j, j)`` for ``j = 0..n-1`` as a stream, sort by the random
index, merge-scan against the data array to attach values, then sort back
by ``j`` — since the ``random_index_j`` are iid uniform, reading the
result in ``j`` order yields ``n`` iid WR samples, at 2 sorts + 3 scans of
I/O cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import obs
from repro.em.array import ExternalArray, ExternalWriter
from repro.em.model import EMMachine
from repro.em.sorting import external_merge_sort
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

# Same registry entries as em_range_sampler.py — em.ios_per_query in the
# derived snapshot divides the machine I/Os by this shared query count.
_EM_QUERIES = obs.counter("em.queries", "EM sampling queries (§8 structures)")
_EM_REFILLS = obs.counter("em.pool_refills", "Sample-pool refills (amortised cost)")


class _EMSetEngineMixin(EngineSampler):
    """Shared engine plumbing for the §8 set samplers (args=(), op→query)."""

    engine_ops = {
        "sample": EngineOp("query", takes_s=True, pass_rng=False),
    }
    engine_thread_safe = False

    @classmethod
    def build(
        cls,
        machine: Optional[EMMachine] = None,
        values: Sequence = (),
        block_size: int = 64,
        memory_blocks: int = 8,
        **params,
    ):
        """Registry factory: assemble the simulated machine when absent."""
        if machine is None:
            machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
        return cls(machine, values, **params)

    def sample(self, s: int) -> List:
        """Alias for ``query`` (protocol entry)."""
        return self.query(s)


class NaiveEMSetSampler(_EMSetEngineMixin):
    """One random block access per sample — the §8 cautionary baseline."""

    def __init__(self, machine: EMMachine, items: Sequence, rng: RNGLike = None):
        if len(items) == 0:
            raise BuildError("cannot sample from an empty set")
        self.machine = machine
        self._data = ExternalArray.from_list(machine, items)
        self._rng = ensure_rng(rng)

    def __len__(self) -> int:
        return len(self._data)

    def query(self, s: int) -> List:
        """``s`` WR samples via ``s`` random accesses (≈ s I/Os cold)."""
        validate_sample_size(s)
        if obs.ENABLED:
            _EM_QUERIES.inc()
        rng = self._rng
        n = len(self._data)
        return [self._data.get(int(rng.random() * n) % n) for _ in range(s)]


class SamplePoolSetSampler(_EMSetEngineMixin):
    """The §8 sample-pool structure: linear space, sequential queries."""

    def __init__(
        self,
        machine: EMMachine,
        items: Sequence,
        rng: RNGLike = None,
        pool_size: Optional[int] = None,
    ):
        if len(items) == 0:
            raise BuildError("cannot sample from an empty set")
        self.machine = machine
        self._rng = ensure_rng(rng)
        self._data = ExternalArray.from_list(machine, items)
        self._pool_size = pool_size if pool_size is not None else len(items)
        if self._pool_size < 1:
            raise BuildError("pool size must be >= 1")
        self.rebuild_count = 0
        self.rebuild_ios = 0
        self._pool: Optional[ExternalArray] = None
        self._cursor = 0  # next clean pool entry
        self._rebuild_pool()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def clean_samples_left(self) -> int:
        return self._pool_size - self._cursor

    def _rebuild_pool(self) -> None:
        """Refill the pool with fresh iid WR samples using the sort recipe."""
        start_ios = self.machine.stats.total
        self.rebuild_count += 1
        if obs.ENABLED:
            _EM_REFILLS.inc()
        rng = self._rng
        n = len(self._data)

        if self._pool is not None:
            self._pool.free()

        # Stream out (random_index, slot) pairs.
        writer = ExternalWriter(self.machine)
        for slot in range(self._pool_size):
            writer.append((int(rng.random() * n) % n, slot))
        pairs = writer.finish()

        # Sort by random index so the data array can be walked sequentially.
        by_index = external_merge_sort(self.machine, pairs, free_input=True)

        # Merge-scan: attach the data value to every pair.
        valued_writer = ExternalWriter(self.machine)
        data_iter = enumerate(self._data.scan())
        current_index, current_value = next(data_iter)
        for index, slot in by_index.scan():
            while current_index < index:
                current_index, current_value = next(data_iter)
            valued_writer.append((slot, current_value))
        by_index.free()
        valued = valued_writer.finish()

        # Sort back by slot: slots were generated in order, so this
        # restores the iid generation order — a shuffled sample stream.
        by_slot = external_merge_sort(self.machine, valued, free_input=True)

        # Strip the slot tags into the final pool array.
        pool_writer = ExternalWriter(self.machine)
        for _, value in by_slot.scan():
            pool_writer.append(value)
        by_slot.free()
        self._pool = pool_writer.finish()
        self._cursor = 0
        self.rebuild_ios += self.machine.stats.total - start_ios

    def query(self, s: int) -> List:
        """``s`` WR samples by consuming the pool sequentially.

        Marks the returned entries dirty (never reused); rebuilds the pool
        whenever it runs out mid-query, exactly as §8 prescribes.
        """
        validate_sample_size(s)
        if obs.ENABLED:
            _EM_QUERIES.inc()
        assert self._pool is not None
        result: List = []
        while len(result) < s:
            available = self._pool_size - self._cursor
            if available == 0:
                self._rebuild_pool()
                available = self._pool_size
            take = min(s - len(result), available)
            result.extend(self._pool.read_range(self._cursor, self._cursor + take))
            self._cursor += take
        return result
