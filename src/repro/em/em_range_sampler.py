"""Range sampling in external memory (paper §8, Hu et al. [18]-style).

Problem: ``S`` is a sorted set of ``n`` values on disk; a query
``([x, y], s)`` returns ``s`` independent samples of ``S ∩ [x, y]`` — WR
(uniform) by default, weighted when per-element weights are supplied;
all queries mutually independent.

Structure: a :class:`~repro.em.btree.StaticBTree` whose every subtree
(internal node or leaf) owns a disk-resident *pool* of pre-drawn samples
of that subtree, in the spirit of the §8 sample-pool idea lifted onto the
B-tree. A query finds the ``O(log_B n)`` canonical subtrees
(boundary-path I/Os only), splits the ``s`` draws multinomially across
them by exact subtree counts/weights (CPU is free in EM), and consumes
each subtree's pool sequentially. An exhausted pool refills by drawing
from its *children's* pools (leaves refill from their own data block), so
a refill of ``Θ(pool)`` samples costs O(fanout) block I/Os per level —
amortised ``O((1/B)·log_B n)`` I/Os per sample, matching the flavour of
Hu et al.'s ``O(log_B n + (s/B)·log_{M/B}(n/B))`` amortised bound
(DESIGN.md §4 notes the log-base substitution). The weighted mode covers
the practical side of the paper's Direction 2 (the *optimal* weighted EM
bound remains open, as §9 states).

Pool block layout: ``[cursor, sample, sample, ...]`` across
``pool_blocks`` blocks; reading + rewriting the cursor are ordinary block
I/Os, so the accounting is honest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core.alias import alias_draw, build_alias_tables
from repro.core.planner import QueryPlan
from repro.core.schemes import multinomial_split
from repro.em.btree import Ref, StaticBTree
from repro.em.model import EMMachine
from repro.engine.protocol import EngineOp, RangeQueryMixin
from repro.errors import BuildError, EmptyQueryError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

# Shared across the EM samplers (same registry entry is fetched in
# sample_pool.py), so em.ios_per_query aggregates over whichever §8
# structure an experiment exercises.
_EM_QUERIES = obs.counter("em.queries", "EM sampling queries (§8 structures)")
_EM_REFILLS = obs.counter("em.pool_refills", "Sample-pool refills (amortised cost)")


class EMRangeSampler(RangeQueryMixin):
    """B-tree with per-subtree sample pools for EM range sampling.

    ``pool_blocks`` controls the pool size per subtree (``pool_blocks·B - 1``
    samples): larger pools amortise the refill's children-touching cost over
    more samples, at a linear space premium — the classic §8 space/query
    trade-off. Pass ``weights`` for weighted sampling.
    """

    # Pools mutate on every query (consume + refill), so execution is
    # stateful: seeded requests go through the protocol's swap path.
    engine_ops = {
        "sample": EngineOp("query", takes_s=True, pass_rng=False),
    }
    engine_thread_safe = False

    plan_kind = "em"

    @classmethod
    def build(
        cls,
        machine: Optional[EMMachine] = None,
        values: Sequence[float] = (),
        block_size: int = 64,
        memory_blocks: int = 8,
        **params,
    ) -> "EMRangeSampler":
        """Registry factory: assemble the simulated machine when absent."""
        if machine is None:
            machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
        return cls(machine, values, **params)

    def sample(self, x: float, y: float, s: int) -> List[float]:
        """Alias for :meth:`query` (protocol entry)."""
        return self.query(x, y, s)

    def __init__(
        self,
        machine: EMMachine,
        values: Sequence[float],
        rng: RNGLike = None,
        pool_blocks: int = 4,
        weights: Optional[Sequence[float]] = None,
    ):
        if machine.block_size < 2:
            raise BuildError("EMRangeSampler needs B >= 2 (pool blocks hold a cursor)")
        if pool_blocks < 1:
            raise BuildError("pool_blocks must be >= 1")
        self.machine = machine
        self.tree = StaticBTree(machine, values, weights=weights)
        self._rng = ensure_rng(rng)
        self._pool_blocks = pool_blocks
        self._pool_capacity = pool_blocks * machine.block_size - 1
        # ref -> list of pool block ids; pools are created lazily.
        self._pool_block: Dict[Ref, list] = {}
        self.refill_count = 0

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def is_weighted(self) -> bool:
        return self.tree.is_weighted

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------

    def _draw_from_leaf(self, leaf_index: int, count: int) -> List:
        """``count`` (weighted) draws from one leaf's elements."""
        rng = self._rng
        values = self.tree.read_leaf_values(leaf_index)
        if not self.tree.is_weighted:
            width = len(values)
            return [values[int(rng.random() * width) % width] for _ in range(count)]
        weights = self.tree.read_leaf_weights(leaf_index)
        prob, alias = build_alias_tables(weights)
        return [values[alias_draw(prob, alias, rng)] for _ in range(count)]

    def _refill(self, ref: Ref) -> List:
        """Draw a fresh pool of samples for the subtree behind ``ref``."""
        self.refill_count += 1
        if obs.ENABLED:
            _EM_REFILLS.inc()
        rng = self._rng
        capacity = self._pool_capacity
        kind, identifier = ref
        if kind == "leaf":
            return self._draw_from_leaf(identifier, capacity)
        children = self.tree.children_of(ref)
        child_weights = [child[5] for child in children]
        allocation = multinomial_split(child_weights, capacity, rng)
        samples: List = []
        for child, child_count in zip(children, allocation):
            if child_count:
                samples.extend(self._consume(child[2], child_count))
        rng.shuffle(samples)  # interleave children fairly (CPU free)
        return samples

    def _write_pool(self, blocks: list, samples: List) -> None:
        """Lay out ``[cursor] + samples`` across the pool's blocks."""
        B = self.machine.block_size
        words = [0] + samples
        for index, block_id in enumerate(blocks):
            self.machine.write_block(block_id, words[index * B : (index + 1) * B])

    def _consume(self, ref: Ref, count: int) -> List:
        """Take ``count`` samples from the subtree's pool, refilling as needed.

        The cursor lives in word 0 of the pool's first block; consuming k
        samples costs one cursor-block read + rewrite plus ``O(k/B)``
        sequential pool-block reads — all charged through the machine.
        """
        blocks = self._pool_block.get(ref)
        if blocks is None:
            blocks = self.machine.allocate_blocks(self._pool_blocks)
            self._pool_block[ref] = blocks
            self._write_pool(blocks, self._refill(ref))

        B = self.machine.block_size
        taken: List = []
        while len(taken) < count:
            head = self.machine.read_block(blocks[0])
            cursor = head[0]
            available = self._pool_capacity - cursor
            if available == 0:
                self._write_pool(blocks, self._refill(ref))
                continue
            take = min(count - len(taken), available)
            # Words 1 + cursor .. 1 + cursor + take span one or more blocks.
            position = 1 + cursor
            end = position + take
            while position < end:
                frame = self.machine.read_block(blocks[position // B])
                offset = position % B
                grab = min(end - position, B - offset)
                taken.extend(frame[offset : offset + grab])
                position += grab
            new_head = list(head)
            new_head[0] = cursor + take
            self.machine.write_block(blocks[0], new_head)
        return taken

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def plan_range(self, x: float, y: float) -> QueryPlan:
        """The §8 plan for ``[x, y]`` — built per query, never cached.

        Planning here *is* the I/O-charged part of the query: the
        canonical-unit decomposition touches root-to-leaf paths and
        charges block I/Os to the simulated machine. Caching plans would
        skip those charges and falsify the EM cost model the structure
        exists to reproduce, so the EM path deliberately opts out of the
        plan store (it still gets the plan → execute split: planning
        consumes no randomness, execution spends all of it).
        """
        units = self.tree.canonical_units_weighted(x, y)
        return QueryPlan(
            self.plan_kind,
            (x, y),
            spans=tuple((lo, hi) for _, lo, hi, _ in units),
            weights=tuple(weight for _, _, _, weight in units),
            payload=units,
        )

    def plan_request(self, request) -> QueryPlan:
        """Plan an engine request without executing draws (--explain).

        Note that EM planning charges block I/Os (see
        :meth:`plan_range`), so explain is not free here — exactly as
        the paper's cost model says a query decomposition cannot be.
        """
        self.validate_request(request)
        x, y = request.args
        plan = self.plan_range(x, y)
        if not plan.payload:
            raise EmptyQueryError(f"no values in [{x}, {y}]")
        return plan

    def query(self, x: float, y: float, s: int) -> List[float]:
        """``s`` independent (weighted) samples of ``S ∩ [x, y]``."""
        validate_sample_size(s)
        if obs.ENABLED:
            _EM_QUERIES.inc()
        plan = self.plan_range(x, y)
        if not plan.payload:
            raise EmptyQueryError(f"no values in [{x}, {y}]")
        return self.execute_plan(plan, s)

    def execute_plan(self, plan: QueryPlan, s: int) -> List[float]:
        """Draw ``s`` samples from a plan (all randomness spent here;
        consumes and refills the sample pools)."""
        units = plan.payload
        allocation = multinomial_split([weight for _, _, _, weight in units], s, self._rng)
        rng = self._rng
        result: List[float] = []
        B = self.machine.block_size
        for (ref, lo, hi, _), unit_count in zip(units, allocation):
            if unit_count == 0:
                continue
            kind, identifier = ref
            if kind == "partial":
                # Boundary piece: its leaf block is already hot from the
                # decomposition; draw from the sub-span.
                values = self.tree.read_leaf_values(identifier)
                offset = identifier * B
                piece = values[lo - offset : hi - offset]
                if self.tree.is_weighted:
                    piece_weights = self.tree.read_leaf_weights(identifier)[
                        lo - offset : hi - offset
                    ]
                    prob, alias = build_alias_tables(piece_weights)
                    result.extend(
                        piece[alias_draw(prob, alias, rng)] for _ in range(unit_count)
                    )
                else:
                    width = len(piece)
                    result.extend(
                        piece[int(rng.random() * width) % width]
                        for _ in range(unit_count)
                    )
            else:
                result.extend(self._consume(ref, unit_count))
        return result

    def naive_query(self, x: float, y: float, s: int) -> List[float]:
        """Baseline: report ``S ∩ [x, y]`` in full, then sample (Θ(|S_q|/B) I/Os)."""
        validate_sample_size(s)
        if obs.ENABLED:
            _EM_QUERIES.inc()
        units = self.tree.canonical_units(x, y)
        if not units:
            raise EmptyQueryError(f"no values in [{x}, {y}]")
        lo, hi = units[0][1], units[-1][2]
        reported = self.tree.data.read_range(lo, hi)
        rng = self._rng
        if self.tree.is_weighted:
            assert self.tree.weights_data is not None
            reported_weights = self.tree.weights_data.read_range(lo, hi)
            prob, alias = build_alias_tables(reported_weights)
            return [reported[alias_draw(prob, alias, rng)] for _ in range(s)]
        width = len(reported)
        return [reported[int(rng.random() * width) % width] for _ in range(s)]
