"""The Aggarwal–Vitter external-memory machine, simulated (paper §8).

A machine has ``M`` words of memory and an unbounded disk formatted into
blocks of ``B`` words, with ``M ≥ 2B``. An I/O transfers one block between
disk and memory; an algorithm's cost is its I/O count (CPU time is free).

The simulation keeps an LRU cache of ``M // B`` block frames: reading a
cached block is free (it is "in memory"), a miss costs one read I/O, and
evicting a dirty frame costs one write I/O. Structures built on
:class:`EMMachine` therefore measure exactly what the §8 bounds talk
about.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List

from repro import obs
from repro.errors import ExternalMemoryError

# Process-wide mirrors of the per-machine counters below, unified under
# the repro.obs registry so measured I/Os per query can be asserted
# against the §3.3/§8 lower bound in the same snapshot as every other
# sampler cost (``em.ios_per_query`` in the derived section).
_BLOCK_READS = obs.counter("em.block_reads", "EM block read I/Os (all machines)")
_BLOCK_WRITES = obs.counter("em.block_writes", "EM block write I/Os (all machines)")


@dataclass
class IOStats:
    """Running I/O counters of a machine."""

    reads: int = 0
    writes: int = 0
    history: List[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def checkpoint(self) -> int:
        """Record and return the current total (for per-phase accounting)."""
        self.history.append(self.total)
        return self.total

    def since(self, checkpoint: int) -> int:
        """I/Os performed since a :meth:`checkpoint` value."""
        return self.total - checkpoint

    def reset(self) -> None:
        """Zero the counters and forget checkpoints.

        Call between experiments sharing one machine (or process) so a
        later measurement window doesn't inherit stale I/O counts; the
        registry-side aggregates are reset separately via ``obs.reset()``.
        """
        self.reads = 0
        self.writes = 0
        self.history.clear()


class EMMachine:
    """Simulated disk + LRU memory with exact I/O accounting."""

    def __init__(self, block_size: int = 64, memory_blocks: int = 8):
        if block_size < 1:
            raise ExternalMemoryError("block size B must be >= 1")
        if memory_blocks < 2:
            raise ExternalMemoryError("the model requires M >= 2B (>= 2 memory frames)")
        self.block_size = block_size
        self.memory_blocks = memory_blocks
        self.stats = IOStats()
        self._disk: Dict[int, List] = {}
        self._next_block_id = 0
        # LRU cache: block id -> frame contents; most-recently-used last.
        self._cache: "OrderedDict[int, List]" = OrderedDict()
        self._dirty: set = set()

    # ------------------------------------------------------------------
    # model parameters
    # ------------------------------------------------------------------

    @property
    def B(self) -> int:
        """Block size in words."""
        return self.block_size

    @property
    def M(self) -> int:
        """Memory size in words."""
        return self.memory_blocks * self.block_size

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate_blocks(self, count: int) -> List[int]:
        """Reserve ``count`` fresh (zeroed) disk blocks; no I/O charged."""
        if count < 0:
            raise ExternalMemoryError("cannot allocate a negative block count")
        ids = list(range(self._next_block_id, self._next_block_id + count))
        self._next_block_id += count
        for block_id in ids:
            self._disk[block_id] = []
        return ids

    def free_blocks(self, block_ids: List[int]) -> None:
        """Release blocks (no I/O; frees simulation memory)."""
        for block_id in block_ids:
            self._disk.pop(block_id, None)
            self._cache.pop(block_id, None)
            self._dirty.discard(block_id)

    @property
    def allocated_blocks(self) -> int:
        return len(self._disk)

    # ------------------------------------------------------------------
    # block transfers
    # ------------------------------------------------------------------

    def read_block(self, block_id: int) -> List:
        """Fetch a block into memory (1 read I/O on a cache miss)."""
        if block_id not in self._disk:
            raise ExternalMemoryError(f"block {block_id} was never allocated")
        if block_id in self._cache:
            self._cache.move_to_end(block_id)
            return self._cache[block_id]
        self.stats.reads += 1
        if obs.ENABLED:
            _BLOCK_READS.inc()
        frame = list(self._disk[block_id])
        self._install(block_id, frame)
        return frame

    def write_block(self, block_id: int, words: List) -> None:
        """Write ``words`` to a block (write-back through the cache)."""
        if block_id not in self._disk:
            raise ExternalMemoryError(f"block {block_id} was never allocated")
        if len(words) > self.block_size:
            raise ExternalMemoryError(
                f"{len(words)} words exceed the block size B={self.block_size}"
            )
        frame = list(words)
        if block_id in self._cache:
            self._cache.move_to_end(block_id)
            self._cache[block_id] = frame
        else:
            self._install(block_id, frame)
        self._dirty.add(block_id)

    def _install(self, block_id: int, frame: List) -> None:
        while len(self._cache) >= self.memory_blocks:
            victim, victim_frame = self._cache.popitem(last=False)
            if victim in self._dirty:
                self.stats.writes += 1
                if obs.ENABLED:
                    _BLOCK_WRITES.inc()
                self._disk[victim] = victim_frame
                self._dirty.discard(victim)
        self._cache[block_id] = frame

    def flush(self) -> None:
        """Write every dirty frame back to disk (counting the writes)."""
        for block_id in list(self._dirty):
            self.stats.writes += 1
            if obs.ENABLED:
                _BLOCK_WRITES.inc()
            self._disk[block_id] = self._cache[block_id]
        self._dirty.clear()

    def drop_cache(self) -> None:
        """Flush then empty the memory — a "cold cache" for fair measurement."""
        self.flush()
        self._cache.clear()

    def peek_block(self, block_id: int) -> List:
        """Inspect a block without charging I/O (testing only)."""
        if block_id in self._cache:
            return list(self._cache[block_id])
        return list(self._disk[block_id])
