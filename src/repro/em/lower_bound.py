"""Closed-form I/O bounds for EM set sampling (paper §8).

Hu et al. [18] proved that for ``B ≤ s ≤ n^0.99`` every set-sampling
structure — regardless of space — must spend
``Ω(min(s, (s/B)·log_{M/B}(n/B)))`` I/Os per query, even amortised. The
sample-pool structure matches this bound; experiment E9 plots measured
I/Os against these formulas.
"""

from __future__ import annotations

import math


def _log_base(value: float, base: float) -> float:
    # The paper caps the log at ≥ 1 (footnote: log_x(y) := max(1, ...)).
    if value <= 1 or base <= 1:
        return 1.0
    return max(1.0, math.log(value) / math.log(base))


def sort_bound_ios(n: int, B: int, M: int) -> float:
    """The sorting bound ``(n/B)·log_{M/B}(n/B)`` of Aggarwal–Vitter [4]."""
    if n <= 0:
        return 0.0
    scan = n / B
    return scan * _log_base(scan, M / B)


def set_sampling_lower_bound(s: int, n: int, B: int, M: int) -> float:
    """Per-query lower bound ``min(s, (s/B)·log_{M/B}(n/B))`` [18]."""
    if s <= 0:
        return 0.0
    pool_route = (s / B) * _log_base(n / B, M / B)
    return min(float(s), pool_route)


def sample_pool_amortized_ios(s: int, n: int, B: int, M: int) -> float:
    """Amortised query cost of the §8 sample-pool structure.

    Reading ``s`` pool entries sequentially costs ``⌈s/B⌉`` I/Os; each
    entry additionally carries ``O((1/B)·log_{M/B}(n/B))`` amortised
    rebuild charge.
    """
    if s <= 0:
        return 0.0
    read_cost = math.ceil(s / B)
    rebuild_share = (s / n) * 4.0 * sort_bound_ios(n, B, M) if n else 0.0
    return read_cost + rebuild_share
