"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose pip/setuptools lack PEP
660 editable-wheel support (e.g. offline machines without the ``wheel``
package).
"""

from setuptools import setup

setup()
